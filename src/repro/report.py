"""Result formatting for the experiment harness.

The benchmarks print speedup series in the same shape as the paper's
figures (speedup vs. processor count per compiler configuration) and a
Table-1-style summary; these helpers keep that formatting in one place
and generate the EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

Series = Sequence[Tuple[int, float]]


def save_experiment(
    name: str, text: str, metrics: Optional[Mapping] = None
) -> str:
    """Persist a benchmark's formatted output under ``results/``.

    pytest captures stdout, so the benchmark harness writes each
    table/figure reproduction to a file as well; EXPERIMENTS.md points
    at these.  When ``metrics`` is given (raw series / breakdowns), a
    machine-readable sibling ``<name>.json`` is written next to the
    text table.  Returns the text path written.
    """
    import json
    import os

    root = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    if metrics is not None:
        jpath = os.path.join(root, f"{name}.json")
        with open(jpath, "w") as fh:
            json.dump({"name": name, **dict(metrics)}, fh, indent=1,
                      default=str)
    return path


def format_speedup_table(
    curves: Mapping[str, Series], title: str = ""
) -> str:
    """Render speedup-vs-processors curves as a fixed-width table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    procs = [p for p, _ in next(iter(curves.values()))]
    header = f"{'scheme':34s}" + "".join(f"{p:>8d}" for p in procs)
    lines.append(header)
    lines.append("-" * len(header))
    for scheme, series in curves.items():
        row = f"{scheme:34s}" + "".join(f"{s:8.2f}" for _, s in series)
        lines.append(row)
    return "\n".join(lines)


_PROFILE_CLASSES = [
    ("cold", "cold"),
    ("replacement", "conflict"),
    ("true_sharing", "true-sh"),
    ("false_sharing", "false-sh"),
    ("upgrade", "upgrade"),
    ("l2_hits", "l2-hit"),
    ("remote", "remote"),
    ("local_miss", "loc-miss"),
]


def format_profile_table(result) -> str:
    """The "why is this slow" profile of one :class:`SimResult`.

    Per-phase steady-round miss classes next to the phase times, plus
    (when the detail fields were computed) the per-array breakdown, the
    NUMA local/remote ratio, and the conflict-set occupancy.
    """
    lines: List[str] = []
    lines.append(
        f"profile: {result.scheme} P={result.nprocs} "
        f"total={result.total_time:.3e}"
    )
    header = (
        f"{'phase':16s} {'time':>11s} {'sync':>10s} {'accesses':>9s}"
        + "".join(f"{label:>9s}" for _, label in _PROFILE_CLASSES)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for pc in result.phase_costs:
        m = pc.misses or {}
        lines.append(
            f"{pc.nest_name:16s} {pc.time:11.3e} {pc.sync:10.3e} "
            f"{m.get('accesses', 0):>9d}"
            + "".join(f"{m.get(key, 0):>9d}" for key, _ in _PROFILE_CLASSES)
        )
    if result.array_breakdown:
        lines.append("")
        header = (
            f"{'array':16s} {'accesses':>11s} {'':>10s} {'':>9s}"
            + "".join(f"{label:>9s}" for _, label in _PROFILE_CLASSES)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, ab in sorted(result.array_breakdown.items()):
            lines.append(
                f"{name:16s} {ab.get('accesses', 0):>11d} {'':>10s} {'':>9s}"
                + "".join(
                    f"{ab.get(key, 0):>9d}" for key, _ in _PROFILE_CLASSES
                )
            )
    if result.numa:
        lines.append(
            f"numa: {result.numa['local_misses']} local / "
            f"{result.numa['remote_misses']} remote misses "
            f"(local ratio {result.numa['local_ratio']:.2f})"
        )
    if result.conflict_sets:
        cs = result.conflict_sets
        top = ", ".join(f"set {s}: {c}" for s, c in cs.get("top_sets", []))
        lines.append(
            f"conflict sets: {cs['replacement_misses']} replacement misses "
            f"over {cs['nsets']} sets, max/set={cs['max_per_set']} "
            f"mean/set={cs['mean_per_set']:.1f}"
            + (f" [{top}]" if top else "")
        )
    if getattr(result, "locality", None):
        lines.append("")
        lines.append(format_locality_table(result.locality))
    return "\n".join(lines)


def format_locality_table(loc: Mapping) -> str:
    """Fixed-width rendering of one locality report
    (:meth:`repro.machine.locality.LocalityReport.as_dict`): per-array
    reuse-distance summaries with p50/p95/max columns, the set-pressure
    distribution, and the phase×array heatmap as a count matrix."""
    lines: List[str] = [
        f"locality: line={loc['line_bytes']}B nsets={loc['nsets']}"
    ]
    reuse = loc.get("reuse") or {}
    if reuse:
        header = (
            f"{'array':16s} {'accesses':>9s} {'cold':>7s} "
            f"{'p50':>7s} {'p95':>7s} {'max':>7s}  reuse-distance hist"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(reuse):
            r = reuse[name]
            hist = " ".join(
                f"{k}:{v}" for k, v in (r.get("hist") or {}).items()
            )
            lines.append(
                f"{name:16s} {r['accesses']:>9d} {r['cold']:>7d} "
                f"{r['p50']:>7.1f} {r['p95']:>7.1f} {r['max']:>7d}  {hist}"
            )
    sp = loc.get("set_pressure") or {}
    if sp:
        hist = " ".join(f"{k}:{v}" for k, v in (sp.get("hist") or {}).items())
        lines.append(
            f"set pressure: {sp['used']}/{sp['nsets']} sets used, "
            f"max={sp['max']} mean={sp['mean']:.2f} p95={sp['p95']:.1f}"
            + (f"  [{hist}]" if hist else "")
        )
    hm = loc.get("heatmap") or {}
    if hm.get("phases"):
        arrays = hm["arrays"]
        corner = "phase \\ array"
        header = f"{corner:16s}" + "".join(f"{a:>10s}" for a in arrays)
        lines.append(header)
        for phase, row in zip(hm["phases"], hm["counts"]):
            lines.append(
                f"{phase:16s}" + "".join(f"{c:>10d}" for c in row)
            )
    return "\n".join(lines)


def format_hotspot_table(hot: Mapping, top: int = 15) -> str:
    """Ranked self-time table of one hotspot profile
    (:meth:`repro.obs.hotspot.HotspotReport.as_dict`), followed by the
    per-module and per-package self-time rollups.  All orderings are
    deterministic (self-time descending, key ascending tie-break; the
    rollups re-sort the name-sorted dicts the same way)."""
    lines: List[str] = [
        f"hotspots: wall={hot['wall_s']:.3f}s samples={hot['samples']} "
        f"interval={hot['interval']} ticks={hot['ticks']}"
    ]
    header = (
        f"{'function':58s} {'self ms':>9s} {'cum ms':>9s} {'n':>6s} "
        f"{'p50 ms':>8s} {'p95 ms':>8s} {'max ms':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for f in hot["functions"][:top]:
        lines.append(
            f"{f['key']:58s} {f['self_s'] * 1e3:9.2f} "
            f"{f['cum_s'] * 1e3:9.2f} {f['self_samples']:>6d} "
            f"{f['self_p50'] * 1e3:8.3f} {f['self_p95'] * 1e3:8.3f} "
            f"{f['self_max'] * 1e3:8.3f}"
        )
    modules = hot.get("modules") or {}
    if modules:
        lines.append("")
        lines.append(f"{'module (self-time rollup)':58s} {'self ms':>9s}")
        ranked = sorted(modules.items(), key=lambda kv: (-kv[1], kv[0]))
        for mod, s in ranked:
            lines.append(f"{mod:58s} {s * 1e3:9.2f}")
        # Top-level package rollup: machine/* vs pipeline/* vs ... — the
        # coarse answer to "is the simulator or the compiler the cost".
        pkgs: Dict[str, float] = {}
        for mod, s in modules.items():
            pkg = mod.split("/", 1)[0] if "/" in mod else mod
            pkgs[pkg] = pkgs.get(pkg, 0.0) + s
        lines.append("")
        lines.append(f"{'package':58s} {'self ms':>9s}")
        for pkg, s in sorted(pkgs.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"{pkg:58s} {s * 1e3:9.2f}")
    return "\n".join(lines)


def hotspots_html(payload: Mapping) -> str:
    """Self-contained HTML rendering of a ``repro hotspots`` payload:
    the ranked function table plus one phase×array heatmap per grid
    point, cells shaded by access count.  Deterministic: content is a
    pure function of the payload, iteration orders are sorted."""
    from repro.obs.html import esc, heat_style, page, table

    parts: List[str] = []
    hot = payload.get("hotspots")
    if hot:
        wall = "{:.3f}".format(hot["wall_s"])
        parts.append(
            f"<p>wall={esc(wall)}s samples={esc(hot['samples'])} "
            f"interval={esc(hot['interval'])}</p>"
        )
        parts.append("<h2>self-time ranking</h2>")
        parts.append(table(
            ["function", "self ms", "cum ms", "samples"],
            [[f["key"], f"{f['self_s'] * 1e3:.2f}",
              f"{f['cum_s'] * 1e3:.2f}", f["self_samples"]]
             for f in hot["functions"]],
        ))
    for point in payload.get("points", []):
        loc = point.get("locality") or {}
        hm = loc.get("heatmap") or {}
        if not hm.get("phases"):
            continue
        label = (f"{point['app']} / {point['scheme']} / "
                 f"P={point['nprocs']}")
        parts.append(f"<h2>heatmap: {esc(label)}</h2>")
        peak = max(
            (c for row in hm["counts"] for c in row), default=0
        )
        rows = []
        for phase, row in zip(hm["phases"], hm["counts"]):
            # Shade by relative access count (deterministic alpha).
            rows.append([phase] + [
                (c, heat_style(c / peak if peak else 0.0)) for c in row
            ])
        parts.append(table(["phase \\ array", *hm["arrays"]], rows))
        reuse = loc.get("reuse") or {}
        if reuse:
            parts.append(table(
                ["array", "accesses", "cold", "p50", "p95", "max"],
                [[name, reuse[name]["accesses"], reuse[name]["cold"],
                  f"{reuse[name]['p50']:.1f}",
                  f"{reuse[name]['p95']:.1f}", reuse[name]["max"]]
                 for name in sorted(reuse)],
            ))
    return page("repro hotspots", parts)


def _fmt_bytes(n) -> str:
    if not isinstance(n, (int, float)):
        return "?"
    return f"{n / 1e6:.0f} MB" if n >= 1e6 else f"{n / 1e3:.0f} kB"


def format_status_text(status: Mapping) -> str:
    """Terminal rendering of one run's :class:`RunStatus` dict — the
    ``repro status`` / ``repro watch`` display."""
    s = status
    lines: List[str] = []
    pid = s.get("pid")
    alive = s.get("pid_alive")
    liveness = {True: " (alive)", False: " (dead)"}.get(alive, "")
    lines.append(f"run {s.get('run_id', '?')}  state={s.get('state', '?')}"
                 f"  pid {pid if pid else '?'}{liveness}")

    total = s.get("total") or 0
    finished = s.get("finished") or 0
    frac = s.get("progress")
    if frac is None:
        frac = finished / total if total else 1.0
    width = 30
    filled = min(int(width * frac), width)
    tail = ""
    if s.get("ewma_latency") is not None:
        tail += f"  ewma {s['ewma_latency']:.3g}s/pt"
    if s.get("eta") is not None:
        tail += f"  eta {s['eta']:.3g}s"
    lines.append(f"[{'#' * filled}{'.' * (width - filled)}] "
                 f"{finished}/{total} {frac * 100:.0f}%{tail}")

    lines.append(
        f"ok {s.get('ok', 0)}  errors {s.get('errors', 0)}  "
        f"degraded {s.get('degraded', 0)}  retried {s.get('retried', 0)}  "
        f"store-hits {s.get('store_hits', 0)}  waves {s.get('waves', 0)}  "
        f"resumes {s.get('resumes', 0)}")
    extras = []
    if s.get("cache_hit_rate") is not None:
        extras.append(f"cache hit rate {s['cache_hit_rate'] * 100:.1f}%")
    if s.get("heartbeat_age") is not None:
        extras.append(f"heartbeat {s['heartbeat_age']:.1f}s ago")
    if s.get("rss") is not None:
        extras.append(f"rss {_fmt_bytes(s['rss'])}")
    if extras:
        lines.append("  ".join(extras))

    in_flight = s.get("in_flight") or []
    if in_flight:
        labels = ", ".join(str(p.get("label", p.get("i")))
                           for p in in_flight[:8])
        more = f", +{len(in_flight) - 8} more" if len(in_flight) > 8 else ""
        lines.append(f"in flight ({len(in_flight)}): {labels}{more}")

    matrix = s.get("scheme_matrix") or {}
    if matrix:
        schemes = sorted({sch for cells in matrix.values()
                          for sch in cells})
        lines.append("")
        header = f"{'app':16s}" + "".join(f"{sch:>10s}" for sch in schemes)
        lines.append(header)
        lines.append("-" * len(header))
        for app in sorted(matrix):
            row = f"{app:16s}"
            for sch in schemes:
                done, tot = (matrix[app].get(sch) or [0, 0])[:2]
                row += f"{f'{done}/{tot}':>10s}"
            lines.append(row)
    if s.get("torn_tail") or s.get("bad_lines"):
        lines.append(f"journal damage: torn_tail={bool(s.get('torn_tail'))}"
                     f" bad_lines={s.get('bad_lines', 0)}")
    return "\n".join(lines)


def format_series_table(rows: Sequence[Mapping], limit: int = 0) -> str:
    """The ``repro series`` trend table: one row per tracked metric,
    regressions and counter drifts highlighted with a leading ``!``."""
    lines: List[str] = []
    shown = list(rows[:limit]) if limit and limit > 0 else list(rows)
    header = (f"  {'metric':44s} {'unit':12s} {'runs':>5s} "
              f"{'last':>10s} {'prev':>10s} {'misses':>8s}  status")
    lines.append(header)
    lines.append("-" * len(header))
    for r in shown:
        mark = "! " if r.get("status") in ("regressed", "changed") else "  "
        prev = r.get("prev")
        misses = r.get("misses")
        line = (
            f"{mark}{str(r.get('key', '?')):44s} "
            f"{str(r.get('unit', '')):12s} {r.get('runs', 0):>5d} "
            f"{r.get('value', 0):>10.4g} "
            f"{(f'{prev:.4g}' if prev is not None else '-'):>10s} "
            f"{(str(misses) if misses is not None else '-'):>8s}  "
            f"{r.get('status', '')}"
        )
        if r.get("note"):
            line += f"  ({r['note']})"
        lines.append(line)
    if limit and limit > 0 and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more rows "
                     f"(raise --limit to see them)")
    if not rows:
        lines.append("(series history is empty — run `repro bench` or "
                     "the pytest benchmarks to grow it)")
    return "\n".join(lines)


def run_report_html(payload: Mapping) -> str:
    """Self-contained HTML run report from a
    :func:`repro.obs.runstate.build_report` payload: status summary,
    progress/rss curves from the time series, per-point table, and the
    degradation / failure / decision rollups.  Everything inline — the
    file renders from a CI artifact tab with no other assets."""
    from repro.obs.html import page, svg_line, table

    s = payload.get("status") or {}
    parts: List[str] = []

    state = s.get("state", "?")
    state_style = {"finished": "background:#dfd",
                   "running": "background:#dfd",
                   "interrupted": "background:#fdd",
                   "stale": "background:#fec"}.get(state, "")
    parts.append("<h2>status</h2>")
    parts.append(table(
        ["run", "state", "progress", "ok", "errors", "degraded",
         "retried", "store hits", "waves", "resumes", "eta (s)"],
        [[s.get("run_id", "?"), (state, state_style),
          f"{s.get('finished', 0)}/{s.get('total', 0)}",
          s.get("ok", 0), s.get("errors", 0), s.get("degraded", 0),
          s.get("retried", 0), s.get("store_hits", 0),
          s.get("waves", 0), s.get("resumes", 0),
          s.get("eta") if s.get("eta") is not None else "-"]],
    ))
    in_flight = s.get("in_flight") or []
    if in_flight:
        labels = ", ".join(str(p.get("label", p.get("i")))
                           for p in in_flight)
        parts.append(f"<p class='meta'>in flight ({len(in_flight)}): "
                     f"{labels}</p>")

    curves = (payload.get("series") or {}).get("curves") or {}
    if curves:
        parts.append("<h2>time series</h2>")
        for name, unit in (("finished", "points"),
                           ("dispatched", "points"),
                           ("errors", "points"),
                           ("store_hits", "points"),
                           ("rss_mb", "MB")):
            pts = curves.get(name)
            if pts:
                parts.append(svg_line(pts, label=name, unit=unit))
    else:
        parts.append("<p class='meta'>no time-series samples for this "
                     "run (driver ran without --heartbeat?)</p>")

    rows = payload.get("points") or []
    if rows:
        parts.append("<h2>points</h2>")
        parts.append(table(
            ["#", "point", "ok", "elapsed s", "sim time", "store hit",
             "attempts", "degraded"],
            [[r.get("i"), (r.get("label", "?"), ""),
              ("yes", "") if r.get("ok") else ("NO", "background:#fdd"),
              (f"{r['elapsed']:.3f}"
               if isinstance(r.get("elapsed"), (int, float)) else "-"),
              (f"{r['total_time']:.1f}"
               if isinstance(r.get("total_time"), (int, float)) else "-"),
              "hit" if r.get("store_hit") else "",
              r.get("attempts", 1),
              "degraded" if r.get("degraded") else ""]
             for r in rows],
            left_cols=2,
        ))

    for key, title, headers, render in (
        ("degraded", "degraded points", ["point", "reason"],
         lambda d: [d.get("label"), d.get("reason")]),
        ("failures", "failures", ["point", "error"],
         lambda d: [d.get("label"), str(d.get("error", ""))[:200]]),
    ):
        items = payload.get(key) or []
        if items:
            parts.append(f"<h2>{title}</h2>")
            parts.append(table(headers, [render(d) for d in items],
                               left_cols=1))

    decisions = payload.get("decisions") or {}
    if decisions:
        parts.append("<h2>compiler decisions</h2>")
        parts.append(table(["decision", "points"],
                           list(decisions.items())))

    timeline = [e for e in (payload.get("timeline") or [])
                if e.get("type") != "heartbeat"]
    if timeline:
        parts.append("<h2>timeline</h2>")
        shown = timeline[:400]
        parts.append(table(
            ["t (s)", "event", "detail"],
            [[f"{e.get('t', 0):.3f}", e.get("type"),
              e.get("label") or
              (f"wave {e.get('wave')} ({e.get('pending')} pending)"
               if e.get("type") == "wave" else
               f"point {e.get('i')} "
               f"{'ok' if e.get('ok') else 'failed'}")]
             for e in shown],
            left_cols=0,
        ))
        if len(timeline) > len(shown):
            parts.append(f"<p class='meta'>... {len(timeline) - len(shown)}"
                         " more events</p>")

    hdr = payload.get("header") or {}
    parts.append(f"<p class='meta'>journal schema {hdr.get('schema', '?')}"
                 f" · created {hdr.get('created', '?')}"
                 f" · samples {(payload.get('series') or {}).get('samples', 0)}"
                 "</p>")
    return page(f"repro run report — {payload.get('run_id', '?')}", parts)


def profile_as_dict(result) -> Dict:
    """Machine-readable counterpart of :func:`format_profile_table`
    (the ``profile --json`` payload)."""
    phases = []
    for pc in result.phase_costs:
        m = pc.misses or {}
        phases.append({
            "nest": pc.nest_name,
            "time": pc.time,
            "sync": pc.sync,
            "accesses": m.get("accesses", 0),
            "misses": {key: m.get(key, 0) for key, _ in _PROFILE_CLASSES},
        })
    return {
        "scheme": result.scheme,
        "nprocs": result.nprocs,
        "total_time": result.total_time,
        "phases": phases,
        "arrays": {
            name: dict(ab)
            for name, ab in sorted((result.array_breakdown or {}).items())
        },
        "numa": dict(result.numa) if result.numa else None,
        "conflict_sets": (
            dict(result.conflict_sets) if result.conflict_sets else None
        ),
        "locality": (
            dict(result.locality)
            if getattr(result, "locality", None) else None
        ),
    }


# Pipeline order used to group decision records in the explain tree.
_EXPLAIN_STAGES = ("unimodular", "decomposition", "folding", "layout",
                   "addropt")


def format_explain_tree(log, title: str = "") -> str:
    """Human-readable decision tree of one compilation's
    :class:`~repro.obs.provenance.ProvenanceLog` (or a list of record
    dicts).  Degenerate inputs render a one-line message."""
    records = log.as_dicts() if hasattr(log, "as_dicts") else list(log or [])
    head = f"decision provenance: {title}" if title else "decision provenance"
    if not records:
        return f"{head}\n(no decisions recorded)"
    stages = list(_EXPLAIN_STAGES) + sorted(
        {r.get("stage", "?") for r in records} - set(_EXPLAIN_STAGES)
    )
    lines = [
        f"{head} — {len(records)} decision"
        f"{'s' if len(records) != 1 else ''} across "
        f"{len({r.get('stage') for r in records})} stages"
    ]
    for stage in stages:
        group = [r for r in records if r.get("stage") == stage]
        if not group:
            continue
        lines.append(f"[{stage}]")
        for r in group:
            lines.append(
                f"  {r.get('subject', '?')}: chose {r.get('chosen', '?')}"
                + (f"  ({r.get('reason')})" if r.get("reason") else "")
            )
            alts = [a for a in r.get("alternatives", [])
                    if a != r.get("chosen")]
            if alts:
                lines.append(f"      alternatives: {', '.join(alts)}")
            inputs = r.get("inputs") or {}
            if inputs:
                lines.append(
                    "      inputs: "
                    + " ".join(
                        f"{k}={_fmt_value(v)}" for k, v in sorted(inputs.items())
                    )
                )
    return "\n".join(lines)


def _describe_record(rec: Optional[Mapping]) -> str:
    if not rec:
        return "(absent)"
    out = (f"[{rec.get('stage', '?')}] {rec.get('site', '?')} "
           f"{rec.get('subject', '?')}: {rec.get('chosen', '?')}")
    if rec.get("reason"):
        out += f" ({rec['reason']})"
    return out


def format_diff_table(diff, title: str = "run diff") -> str:
    """Ranked root-cause table of a
    :class:`~repro.obs.provenance.RunDiff`: per differing point, the
    metric deltas and the first diverging decision record."""
    lines = [title]
    if diff.identical:
        lines.append(
            f"(runs identical: {diff.n_compared} point"
            f"{'s' if diff.n_compared != 1 else ''} compared, no deltas)"
        )
        return "\n".join(lines)
    for key in diff.missing_in_b:
        lines.append(f"point {key}: present in A only")
    for key in diff.missing_in_a:
        lines.append(f"point {key}: present in B only")
    for rank, p in enumerate(diff.points, 1):
        lines.append(f"#{rank} {p.key}"
                     + ("" if p.significant else "  [wall-only: noise]"))
        for d in p.deltas:
            rel = f" ({d.rel:+.1%})" if d.rel is not None else ""
            lines.append(
                f"    {d.metric}: {_fmt_value(d.a)} -> {_fmt_value(d.b)}{rel}"
            )
        if p.culprit or p.culprit_was:
            lines.append(
                f"    culprit: decision #{p.culprit_index} diverged"
            )
            lines.append(f"      A: {_describe_record(p.culprit_was)}")
            lines.append(f"      B: {_describe_record(p.culprit)}")
        elif p.note:
            lines.append(f"    {p.note}")
    n_sig = sum(1 for p in diff.points if p.significant)
    lines.append(
        f"verdict: {'DIVERGED' if diff.significant else 'NOISE-ONLY'} "
        f"({n_sig} significant point{'s' if n_sig != 1 else ''} of "
        f"{diff.n_compared} compared)"
    )
    return "\n".join(lines)


def _fmt_value(v) -> str:
    """Compact cell rendering for bench/regression tables."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        return f"{v:.4g}"
    if isinstance(v, dict):
        return ",".join(f"{k}={_fmt_value(x)}" for k, x in sorted(v.items()))
    return str(v)


def format_bench_table(snapshot: Mapping) -> str:
    """Per-point summary of one perf-harness snapshot
    (:func:`repro.obs.bench.run_bench`)."""
    cfg = snapshot["config"]
    lines = [
        f"bench: n={cfg['n']} scale={cfg['scale']} "
        f"repeats={cfg['repeats']} ({snapshot['created']})"
    ]
    header = (
        f"{'app':12s} {'scheme':6s} {'P':>3s} {'compile':>9s} "
        f"{'wall min':>10s} {'wall p50':>10s} {'wall max':>10s} "
        f"{'sim time':>11s} {'accesses':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for p in snapshot["points"]:
        w = p["wall"]
        lines.append(
            f"{p['app']:12s} {p['scheme']:6s} {p['nprocs']:3d} "
            f"{p['compile_s']:9.4f} {w['min']:10.5f} {w['p50']:10.5f} "
            f"{w['max']:10.5f} {p['sim']['total_time']:11.4e} "
            f"{p['sim']['n_accesses']:9d}"
        )
    return "\n".join(lines)


def format_regression_table(comparison, title: str = "bench comparison",
                            show_ok: bool = False) -> str:
    """Per-metric verdict of one baseline-vs-current comparison
    (:func:`repro.obs.bench.compare_snapshots`).

    Failing rows (regressed wall time, drifted simulated counters,
    vanished points, incomparable snapshots) always print; ``show_ok``
    adds the passing rows too.
    """
    rows = [r for r in comparison.rows
            if show_ok or r.status not in ("ok",)]
    lines = [title]
    header = (
        f"{'point':22s} {'metric':28s} {'baseline':>14s} "
        f"{'current':>14s} {'delta':>9s}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    if not rows:
        lines.append("(all metrics within thresholds)")
    for r in rows:
        if isinstance(r.baseline, (int, float)) and \
                isinstance(r.current, (int, float)) and \
                not isinstance(r.baseline, bool) and r.baseline:
            delta = f"{(r.current - r.baseline) / r.baseline:+.1%}"
        else:
            delta = "-"
        status = r.status + (f" ({r.note})" if r.note else "")
        lines.append(
            f"{r.point:22s} {r.metric:28s} {_fmt_value(r.baseline):>14s} "
            f"{_fmt_value(r.current):>14s} {delta:>9s}  {status}"
        )
    n_fail = len(comparison.regressions)
    gate = "on" if comparison.wall_gated else "off (different host)"
    lines.append(
        f"verdict: {'OK' if comparison.ok else 'REGRESSED'} "
        f"({n_fail} failing metric{'s' if n_fail != 1 else ''}; "
        f"wall gate {gate}, tol {comparison.wall_tol:.0%})"
    )
    return "\n".join(lines)


def format_ledger_table(ledger: Mapping, title: str = "wall-time ledger",
                        top: int = 25) -> str:
    """Render one wall-time ledger
    (:func:`repro.obs.perf.build_ledger`): rows by descending self
    time, plus the reconciliation verdict that makes the accounting
    falsifiable — the rows (including ``<unattributed>``) must sum
    back to the measured total."""
    from repro.obs.perf import ledger_reconciles

    total = float(ledger["total_s"])
    lines = [title]
    share = (ledger["unattributed_s"] / total) if total else 0.0
    lines.append(
        f"total {total * 1e3:.2f} ms; attributed "
        f"{ledger['attributed_s'] * 1e3:.2f} ms; <unattributed> "
        f"{ledger['unattributed_s'] * 1e3:.3f} ms ({share:.1%})"
    )
    header = (f"{'kind':9s} {'row':36s} {'self ms':>10s} "
              f"{'share':>7s} {'count':>6s}")
    lines.append(header)
    lines.append("-" * len(header))
    rows = sorted(ledger["rows"],
                  key=lambda r: (-r["self_s"], r["kind"], r["name"]))
    for r in rows[:top]:
        frac = (r["self_s"] / total) if total else 0.0
        lines.append(
            f"{r['kind']:9s} {r['name']:36s} {r['self_s'] * 1e3:10.3f} "
            f"{frac:7.1%} {r['count']:6d}"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more rows")
    ok, row_sum = ledger_reconciles(ledger)
    lines.append(
        f"reconciliation: {'OK' if ok else 'BROKEN'} "
        f"(rows sum {row_sum * 1e3:.3f} ms vs total {total * 1e3:.3f} ms)"
    )
    return "\n".join(lines)


def format_perf_diff_table(pd, title: str = "perf diff",
                           top: int = 20) -> str:
    """Ranked culprit table of one :func:`repro.obs.perf.perf_diff`:
    the ledger rows whose self time (or deterministic count) moved,
    largest absolute movement first."""
    lines = [title]
    gate = "on" if pd.wall_gated else (
        f"off ({pd.host_note})" if pd.host_note else "off (different host)")
    lines.append(
        f"compared {pd.n_points} point{'s' if pd.n_points != 1 else ''}, "
        f"{pd.n_rows} ledger rows; wall gate {gate}, "
        f"tol {pd.wall_tol:.0%}, floor {pd.wall_abs_floor * 1e3:.0f} ms"
    )
    culprits = pd.culprits
    if culprits:
        header = (
            f"{'rank':4s} {'point':20s} {'row':26s} {'base ms':>9s} "
            f"{'cur ms':>9s} {'delta ms':>9s}  status"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for rank, r in enumerate(culprits[:top], 1):
            base = "-" if r.baseline is None else f"{r.baseline * 1e3:.3f}"
            cur = "-" if r.current is None else f"{r.current * 1e3:.3f}"
            status = r.status + (f" ({r.note})" if r.note else "")
            lines.append(
                f"#{rank:<3d} {r.point:20s} {r.row:26s} {base:>9s} "
                f"{cur:>9s} {r.delta * 1e3:+9.3f}  {status}"
            )
        if len(culprits) > top:
            lines.append(f"... {len(culprits) - top} more rows")
    else:
        lines.append("(no significant self-time or count movement)")
    for note in pd.notes:
        lines.append(f"note: {note}")
    n = len(culprits)
    lines.append(
        f"verdict: {'SIGNIFICANT' if pd.significant else 'QUIET'} "
        f"({n} row{'s' if n != 1 else ''} moved)"
    )
    return "\n".join(lines)


def markdown_speedup_table(curves: Mapping[str, Series]) -> str:
    """The same data as a Markdown table (for EXPERIMENTS.md)."""
    procs = [p for p, _ in next(iter(curves.values()))]
    out = ["| scheme | " + " | ".join(f"P={p}" for p in procs) + " |"]
    out.append("|" + "---|" * (len(procs) + 1))
    for scheme, series in curves.items():
        out.append(
            f"| {scheme} | "
            + " | ".join(f"{s:.2f}" for _, s in series)
            + " |"
        )
    return "\n".join(out)


def at_procs(series: Series, p: int) -> Optional[float]:
    """The speedup at processor count ``p`` (None if absent)."""
    for q, s in series:
        if q == p:
            return s
    return None


@dataclass
class Table1Row:
    """One row of the paper's Table 1."""

    program: str
    base_speedup: float
    optimized_speedup: float
    comp_decomp_critical: bool
    data_transform_critical: bool
    data_decompositions: List[str] = field(default_factory=list)


def classify_critical(
    base: float, cd: float, cdd: float, threshold: float = 1.15
) -> Tuple[bool, bool]:
    """Infer the Table-1 'critical technique' checkmarks from measured
    speedups.

    Computation decomposition counts as critical when the globally
    decomposed program (with whatever layout it needs) clearly beats
    BASE — the data transformation only exists on top of the
    decomposition, so a big combined win implies the decomposition
    mattered.  Data transformation is critical when it clearly beats
    the decomposition-only configuration.
    """
    comp_critical = cdd >= threshold * base or cd >= threshold * base
    data_critical = cdd >= threshold * max(cd, 1e-12)
    return comp_critical, data_critical


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Fixed-width rendering of the Table-1 reproduction."""
    lines = [
        f"{'Program':12s} {'Base':>7s} {'Optimized':>10s} "
        f"{'CompDecomp':>11s} {'DataTrans':>10s}  Data decompositions"
    ]
    lines.append("-" * 90)
    for r in rows:
        lines.append(
            f"{r.program:12s} {r.base_speedup:7.1f} "
            f"{r.optimized_speedup:10.1f} "
            f"{'yes' if r.comp_decomp_critical else '-':>11s} "
            f"{'yes' if r.data_transform_critical else '-':>10s}  "
            + "; ".join(r.data_decompositions)
        )
    return "\n".join(lines)
