"""Exporters for collected telemetry.

Three output shapes:

* :func:`to_json` — a full structured dump (spans, events, metrics);
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (one ``{"traceEvents": [...]}`` object), loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev: spans become
  complete ("X") events, structured events become instants ("i"), and
  span counters plus registry counters become counter ("C") tracks;
* :func:`summary` — a human-readable span tree with durations,
  attached counters, and the metric totals.

Lane support: :func:`collector_state` freezes a collector into a plain
JSON/pickle-safe dict (raw ``perf_counter`` timestamps preserved) and
:func:`lane_trace_events` renders such a state into one Chrome-trace
lane — an arbitrary ``pid`` with an optional process-name row and a
time shift.  :mod:`repro.obs.agg` builds multi-process merged traces
on top of these two primitives, one lane per worker PID.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.core import Collector, Span
from repro.obs import core


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _us(t: float, t0: float) -> float:
    return (t - t0) * 1e6


def _fmt_opt(v: Any) -> str:
    """Compact rendering of an optional numeric summary field."""
    return "-" if v is None else f"{v:.3g}"


def to_json(collector: Optional[Collector] = None) -> Dict[str, Any]:
    """Full structured dump of one recording."""
    c = collector or core.collector()
    return {
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "cat": s.cat,
                "start_us": _us(s.start, c.t0),
                "dur_us": _us(s.end, s.start),
                "attrs": _jsonable(s.attrs),
                "counters": _jsonable(s.counters),
            }
            for s in sorted(c.spans, key=lambda s: s.start)
        ],
        "events": [
            {
                "name": e.name,
                "cat": e.cat,
                "span": e.span_id,
                "ts_us": _us(e.ts, c.t0),
                "attrs": _jsonable(e.attrs),
            }
            for e in c.events
        ],
        "metrics": c.metrics.snapshot(),
    }


def collector_state(collector: Optional[Collector] = None) -> Dict[str, Any]:
    """Freeze one recording into a plain JSON/pickle-safe dict.

    Timestamps stay raw ``time.perf_counter()`` readings (``t0`` is
    included) so a later merge can shift them onto another process's
    clock; :func:`lane_trace_events` does the relative conversion.
    """
    c = collector or core.collector()
    return {
        "t0": c.t0,
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "cat": s.cat,
                "start": s.start,
                "end": s.end,
                "attrs": _jsonable(s.attrs),
                "counters": _jsonable(s.counters),
            }
            for s in sorted(c.spans, key=lambda s: s.start)
        ],
        "events": [
            {
                "name": e.name,
                "cat": e.cat,
                "span": e.span_id,
                "ts": e.ts,
                "attrs": _jsonable(e.attrs),
            }
            for e in c.events
        ],
        "metrics": c.metrics.snapshot(),
    }


def lane_trace_events(
    state: Dict[str, Any],
    *,
    pid: int = 0,
    tid: int = 0,
    t0: Optional[float] = None,
    shift: float = 0.0,
    process_name: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Chrome trace events for one :func:`collector_state`, as one lane.

    ``t0`` is the zero point of the output timeline (defaults to the
    state's own ``t0``); ``shift`` is added to every raw timestamp
    before the conversion, which is how a merge maps a worker's clock
    onto the driver's.  Timed events come back sorted by ``ts`` so each
    lane is monotonic; a metadata row naming the lane is prepended when
    ``process_name`` is given.
    """
    zero = state["t0"] if t0 is None else t0

    def ts(t: float) -> float:
        return _us(t + shift, zero)

    timed: List[Dict[str, Any]] = []
    for s in state["spans"]:
        timed.append({
            "name": s["name"],
            "cat": s["cat"],
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": ts(s["start"]),
            "dur": _us(s["end"], s["start"]),
            "args": _jsonable(
                dict(sorted({**s["attrs"], **s["counters"]}.items()))
            ),
        })
        # Span counters additionally appear as counter tracks so miss
        # classes etc. render as stacked graphs in the trace viewer.
        for k, v in s["counters"].items():
            timed.append({
                "name": f"{s['name']}.{k}",
                "cat": s["cat"],
                "ph": "C",
                "pid": pid,
                "tid": tid,
                "ts": ts(s["end"]),
                "args": {k: _jsonable(v)},
            })
    for e in state["events"]:
        timed.append({
            "name": e["name"],
            "cat": e["cat"],
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "ts": ts(e["ts"]),
            "args": _jsonable(e["attrs"]),
        })
    end_ts = max(
        [ts(s["end"]) for s in state["spans"]]
        + [ts(e["ts"]) for e in state["events"]]
        + [0.0]
    )
    for name, value in sorted(state["metrics"]["counters"].items()):
        timed.append({
            "name": name,
            "ph": "C",
            "pid": pid,
            "tid": tid,
            "ts": end_ts,
            "args": {name: _jsonable(value)},
        })
    # (ts, name) tie-break keeps the export byte-stable when several
    # events share a timestamp (common for counter flushes at end_ts).
    timed.sort(key=lambda e: (e["ts"], e["name"]))
    out: List[Dict[str, Any]] = []
    if process_name is not None:
        out.append({"name": "process_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": process_name}})
    out.extend(timed)
    return out


def to_chrome_trace(
    collector: Optional[Collector] = None,
    *,
    pid: int = 0,
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Chrome trace-event rendering of one recording (a single lane)."""
    c = collector or core.collector()
    events = lane_trace_events(
        collector_state(c), pid=pid, t0=c.t0, process_name=process_name
    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, collector: Optional[Collector] = None
) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(collector), fh, indent=1)
    return path


def write_collapsed(path: str, stacks: Any) -> str:
    """Write collapsed/folded stack lines (``frame;frame value``) to
    ``path``; returns the path.  ``stacks`` is either a ``{stack:
    seconds}`` mapping (sorted, 6-decimal values — the same rendering
    as :meth:`repro.obs.hotspot.HotspotReport.collapsed`) or
    pre-rendered lines.  The format is what external flamegraph
    tooling (``flamegraph.pl`` etc.) consumes directly."""
    if isinstance(stacks, dict):
        lines = [f"{k} {stacks[k]:.6f}" for k in sorted(stacks)]
    else:
        lines = [str(s).rstrip("\n") for s in (stacks or [])]
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return path


def write_json(path: str, collector: Optional[Collector] = None) -> str:
    """Write the full structured dump to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_json(collector), fh, indent=1)
    return path


def summary(collector: Optional[Collector] = None, max_events: int = 20) -> str:
    """Human-readable recording summary (span tree + metrics)."""
    c = collector or core.collector()
    lines: List[str] = []

    children: Dict[Optional[int], List[Span]] = {}
    for s in sorted(c.spans, key=lambda s: s.start):
        children.setdefault(s.parent_id, []).append(s)

    def render(span: Span, depth: int) -> None:
        ms = (span.end - span.start) * 1e3
        attrs = " ".join(
            f"{k}={v}" for k, v in span.attrs.items() if k != "error"
        )
        ctrs = " ".join(f"{k}={v:g}" for k, v in span.counters.items())
        extra = " ".join(x for x in (attrs, ctrs) if x)
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 36 - 2 * depth)}s}"
            f"{ms:10.3f} ms" + (f"  [{extra}]" if extra else "")
        )
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    if c.spans:
        lines.append("spans:")
        # Roots: no parent, or parent never closed/recorded.
        recorded = {s.span_id for s in c.spans}
        for s in sorted(c.spans, key=lambda s: s.start):
            if s.parent_id is None or s.parent_id not in recorded:
                render(s, 1)

    snap = c.metrics.snapshot()
    store_counters = {
        k: v for k, v in snap["counters"].items()
        if k.startswith(("store.", "journal.", "lock.", "fsck.",
                         "ts.", "monitor."))
    }
    if store_counters or "store.bytes" in snap["gauges"]:
        # The persistent result store — and its crash-safety companions
        # (run journal, cross-process locks, fsck) plus the live-run
        # monitor and its time-series sink — get their own section:
        # hit/miss/invalidation/durability health is the first
        # thing an incremental-run investigation reads.
        lines.append("result store:")
        for k, v in store_counters.items():
            lines.append(f"  {k:<40s}{v:>12g}")
        if "store.bytes" in snap["gauges"]:
            lines.append(
                f"  {'store.bytes':<40s}{snap['gauges']['store.bytes']:>12g}")
    if snap["counters"]:
        lines.append("counters:")
        for k, v in snap["counters"].items():
            lines.append(f"  {k:<40s}{v:>12g}")
    if snap["gauges"]:
        lines.append("gauges:")
        for k, v in snap["gauges"].items():
            lines.append(f"  {k:<40s}{v:>12g}")
    if snap["histograms"]:
        lines.append("histograms:")
        for k, h in snap["histograms"].items():
            lines.append(
                f"  {k:<40s}n={h['count']} mean={h['mean']:.3g} "
                f"p50={_fmt_opt(h.get('p50'))} "
                f"p95={_fmt_opt(h.get('p95'))} "
                f"min={h['min']} max={h['max']}"
            )
    if c.events:
        lines.append(f"events ({len(c.events)}):")
        for e in c.events[:max_events]:
            attrs = " ".join(f"{k}={v}" for k, v in e.attrs.items())
            lines.append(f"  {e.name:<30s}{attrs}")
        if len(c.events) > max_events:
            lines.append(f"  ... {len(c.events) - max_events} more")
    return "\n".join(lines) if lines else "(no telemetry recorded)"
