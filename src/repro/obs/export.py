"""Exporters for collected telemetry.

Three output shapes:

* :func:`to_json` — a full structured dump (spans, events, metrics);
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (one ``{"traceEvents": [...]}`` object), loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev: spans become
  complete ("X") events, structured events become instants ("i"), and
  span counters plus registry counters become counter ("C") tracks;
* :func:`summary` — a human-readable span tree with durations,
  attached counters, and the metric totals.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.core import Collector, Span
from repro.obs import core


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _us(t: float, t0: float) -> float:
    return (t - t0) * 1e6


def to_json(collector: Optional[Collector] = None) -> Dict[str, Any]:
    """Full structured dump of one recording."""
    c = collector or core.collector()
    return {
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "cat": s.cat,
                "start_us": _us(s.start, c.t0),
                "dur_us": _us(s.end, s.start),
                "attrs": _jsonable(s.attrs),
                "counters": _jsonable(s.counters),
            }
            for s in sorted(c.spans, key=lambda s: s.start)
        ],
        "events": [
            {
                "name": e.name,
                "cat": e.cat,
                "span": e.span_id,
                "ts_us": _us(e.ts, c.t0),
                "attrs": _jsonable(e.attrs),
            }
            for e in c.events
        ],
        "metrics": c.metrics.snapshot(),
    }


def to_chrome_trace(collector: Optional[Collector] = None) -> Dict[str, Any]:
    """Chrome trace-event rendering of one recording."""
    c = collector or core.collector()
    out: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "repro"}},
    ]
    for s in sorted(c.spans, key=lambda s: s.start):
        out.append({
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "pid": 0,
            "tid": 0,
            "ts": _us(s.start, c.t0),
            "dur": _us(s.end, s.start),
            "args": _jsonable({**s.attrs, **s.counters}),
        })
        # Span counters additionally appear as counter tracks so miss
        # classes etc. render as stacked graphs in the trace viewer.
        for k, v in s.counters.items():
            out.append({
                "name": f"{s.name}.{k}",
                "cat": s.cat,
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": _us(s.end, c.t0),
                "args": {k: _jsonable(v)},
            })
    for e in c.events:
        out.append({
            "name": e.name,
            "cat": e.cat,
            "ph": "i",
            "s": "t",
            "pid": 0,
            "tid": 0,
            "ts": _us(e.ts, c.t0),
            "args": _jsonable(e.attrs),
        })
    end_ts = max(
        [_us(s.end, c.t0) for s in c.spans]
        + [_us(e.ts, c.t0) for e in c.events]
        + [0.0]
    )
    for name, ctr in sorted(c.metrics.counters.items()):
        out.append({
            "name": name,
            "ph": "C",
            "pid": 0,
            "tid": 0,
            "ts": end_ts,
            "args": {name: _jsonable(ctr.value)},
        })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, collector: Optional[Collector] = None
) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(collector), fh, indent=1)
    return path


def write_json(path: str, collector: Optional[Collector] = None) -> str:
    """Write the full structured dump to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_json(collector), fh, indent=1)
    return path


def summary(collector: Optional[Collector] = None, max_events: int = 20) -> str:
    """Human-readable recording summary (span tree + metrics)."""
    c = collector or core.collector()
    lines: List[str] = []

    children: Dict[Optional[int], List[Span]] = {}
    for s in sorted(c.spans, key=lambda s: s.start):
        children.setdefault(s.parent_id, []).append(s)

    def render(span: Span, depth: int) -> None:
        ms = (span.end - span.start) * 1e3
        attrs = " ".join(
            f"{k}={v}" for k, v in span.attrs.items() if k != "error"
        )
        ctrs = " ".join(f"{k}={v:g}" for k, v in span.counters.items())
        extra = " ".join(x for x in (attrs, ctrs) if x)
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 36 - 2 * depth)}s}"
            f"{ms:10.3f} ms" + (f"  [{extra}]" if extra else "")
        )
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    if c.spans:
        lines.append("spans:")
        # Roots: no parent, or parent never closed/recorded.
        recorded = {s.span_id for s in c.spans}
        for s in sorted(c.spans, key=lambda s: s.start):
            if s.parent_id is None or s.parent_id not in recorded:
                render(s, 1)

    snap = c.metrics.snapshot()
    if snap["counters"]:
        lines.append("counters:")
        for k, v in snap["counters"].items():
            lines.append(f"  {k:<40s}{v:>12g}")
    if snap["gauges"]:
        lines.append("gauges:")
        for k, v in snap["gauges"].items():
            lines.append(f"  {k:<40s}{v:>12g}")
    if snap["histograms"]:
        lines.append("histograms:")
        for k, h in snap["histograms"].items():
            lines.append(
                f"  {k:<40s}n={h['count']} mean={h['mean']:.3g} "
                f"min={h['min']} max={h['max']}"
            )
    if c.events:
        lines.append(f"events ({len(c.events)}):")
        for e in c.events[:max_events]:
            attrs = " ".join(f"{k}={v}" for k, v in e.attrs.items())
            lines.append(f"  {e.name:<30s}{attrs}")
        if len(c.events) > max_events:
            lines.append(f"  ... {len(c.events) - max_events} more")
    return "\n".join(lines) if lines else "(no telemetry recorded)"
