"""Shared building blocks for self-contained HTML reports.

Every HTML artifact the CLI can emit (``hotspots --html``, ``report
--html``) goes through this module: one escaping path, one stylesheet,
no external assets — a report file must render from a CI artifact tab
or an ``file://`` open with nothing else on disk.  Deterministic:
output is a pure function of the input values and all iteration orders
are the caller's.

Cells passed to :func:`table` are escaped here (callers hand over raw
values, never pre-escaped markup); the only way to attach styling is
the ``(value, css)`` tuple form, which keeps attribute injection
impossible by construction.
"""

from __future__ import annotations

import html as _html
from typing import Any, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "esc",
    "heat_style",
    "page",
    "svg_line",
    "table",
]

# The one stylesheet every report shares (monospace tables, bordered
# cells, left-aligned first columns via the "l" class).
_STYLE = (
    "body{font-family:monospace;margin:1.5em;max-width:72em}"
    "table{border-collapse:collapse;margin:0.8em 0}"
    "td,th{border:1px solid #999;padding:2px 8px;text-align:right}"
    "th{background:#eee}td.l,th.l{text-align:left}"
    "h2{margin-top:1.2em}"
    ".bad{background:#fdd}.warn{background:#fec}.ok{background:#dfd}"
    "svg{margin:0.4em 0}"
    ".meta{color:#555}"
)


def esc(value: Any) -> str:
    """The single escaping path for text landing in markup."""
    return _html.escape(str(value), quote=True)


def page(title: str, parts: Iterable[str]) -> str:
    """A complete self-contained document around pre-rendered parts."""
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{esc(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{esc(title)}</h1>" + "".join(parts) + "</body></html>"
    )


def heat_style(alpha: float) -> str:
    """Background shading for heatmap cells (deterministic alpha)."""
    return f"background:rgba(178,34,34,{max(0.0, min(1.0, alpha)):.3f})"


def _cell(value: Any, tag: str, left: bool) -> str:
    """One ``<td>``/``<th>``: value, or ``(value, css)`` for styling."""
    style = ""
    if isinstance(value, tuple):
        value, css = value
        if css:
            style = f" style='{esc(css)}'"
    cls = " class='l'" if left else ""
    return f"<{tag}{cls}{style}>{esc(value)}</{tag}>"


def table(headers: Sequence[Any], rows: Iterable[Sequence[Any]],
          left_cols: int = 1) -> str:
    """An escaped table; the first ``left_cols`` columns left-align."""
    parts: List[str] = ["<table><tr>"]
    for i, h in enumerate(headers):
        parts.append(_cell(h, "th", i < left_cols))
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for i, value in enumerate(row):
            parts.append(_cell(value, "td", i < left_cols))
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def svg_line(points: Sequence[Tuple[float, float]], *,
             width: int = 480, height: int = 120,
             label: str = "", unit: str = "",
             y_max: Optional[float] = None) -> str:
    """A minimal inline SVG line chart (no scripts, no assets).

    ``points`` are ``(x, y)`` in data space; axes are normalized to the
    data's bounding box (``y_max`` pins the top instead when given).
    Renders a labelled frame even for empty/degenerate series so report
    sections keep their shape.
    """
    pts = [(float(x), float(y)) for x, y in points]
    head = (f"<div><div class='meta'>{esc(label)}"
            + (f" ({esc(unit)})" if unit else "") + "</div>")
    frame = (f"<svg width='{width}' height='{height}' "
             f"viewBox='0 0 {width} {height}'>"
             f"<rect x='0' y='0' width='{width}' height='{height}' "
             "fill='#fafafa' stroke='#999'/>")
    if len(pts) < 2:
        return head + frame + "</svg></div>"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0 = min(min(ys), 0.0)
    y1 = y_max if y_max is not None else max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    pad = 4.0
    w, h = width - 2 * pad, height - 2 * pad

    def sx(x: float) -> float:
        return pad + (x - x0) / xspan * w

    def sy(y: float) -> float:
        return pad + h - (y - y0) / yspan * h

    poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
    last = pts[-1][1]
    return (
        head + frame
        + f"<polyline fill='none' stroke='#b22222' stroke-width='1.5' "
          f"points='{poly}'/>"
        + f"<text x='{pad}' y='12' font-size='10' fill='#555'>"
          f"max {y1:.4g}</text>"
        + f"<text x='{width - pad}' y='{height - 6}' font-size='10' "
          f"fill='#555' text-anchor='end'>last {last:.4g}</text>"
        + "</svg></div>"
    )
