"""Cross-process telemetry aggregation.

The batch driver's ``ProcessPoolExecutor`` workers each record into
their own process-local collector; this module is how those recordings
survive the process boundary and come back together:

* :func:`snapshot` — freeze the active collector into a JSON/pickle
  safe dict (``repro.obs.export.collector_state``) stamped with the
  worker PID and a paired ``(perf_counter, wall-clock)`` reference so
  the parent can correct clock skew;
* :func:`clock_offset` — the seconds to add to a snapshot's raw
  ``perf_counter`` timestamps to land them on another process's
  ``perf_counter`` timeline (both processes' wall clocks are the
  shared ruler);
* :class:`MergedTrace` — the driver-side merge: one Chrome-trace lane
  per worker PID (skew-corrected against the driver's clock, timed
  events monotonic within each lane), per-snapshot tags (attempt /
  retry / fault accounting from the batch hardening) threaded onto the
  worker's root spans, and counter/gauge/histogram aggregation with
  per-lane provenance.

A chaos run is then fully reconstructable from one trace file: every
worker's pass spans, fault-injection events, and cache counters appear
on that worker's lane next to the driver's own retry/respawn record.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import core
from repro.obs.export import collector_state, lane_trace_events

__all__ = [
    "SNAPSHOT_SCHEMA",
    "MergedTrace",
    "clock_offset",
    "snapshot",
]

SNAPSHOT_SCHEMA = 1

DRIVER_LANE = "driver"


def snapshot(collector=None, pid: Optional[int] = None) -> Dict[str, Any]:
    """Freeze the collector for shipment across a process boundary.

    The ``perf_ref``/``wall_ref`` pair is read at snapshot time; the
    difference ``wall_ref - perf_ref`` is a per-process constant, so
    the pair taken *whenever* suffices to map this process's raw
    ``perf_counter`` readings onto any other process's timeline (see
    :func:`clock_offset`).
    """
    c = collector or core.collector()
    return {
        "schema": SNAPSHOT_SCHEMA,
        "pid": os.getpid() if pid is None else pid,
        "perf_ref": time.perf_counter(),
        "wall_ref": time.time(),
        **collector_state(c),
    }


def clock_offset(snap: Dict[str, Any], ref: Dict[str, Any]) -> float:
    """Seconds to add to ``snap``'s raw ``perf_counter`` timestamps so
    they read on ``ref``'s ``perf_counter`` timeline.

    Derivation: for each process ``wall ≈ perf + delta`` with its own
    constant ``delta = wall_ref - perf_ref``; a worker instant ``t``
    is wall time ``t + delta_w``, i.e. ``t + delta_w - delta_r`` on the
    reference's perf clock.
    """
    delta_snap = snap["wall_ref"] - snap["perf_ref"]
    delta_ref = ref["wall_ref"] - ref["perf_ref"]
    return delta_snap - delta_ref


def _lane_label(pid: int, parent_pid: int) -> str:
    return DRIVER_LANE if pid == parent_pid else f"worker-{pid}"


class MergedTrace:
    """Driver-side merge of one parent recording plus worker snapshots."""

    def __init__(self, parent: Optional[Dict[str, Any]] = None):
        self.parent = parent if parent is not None else snapshot()
        self._workers: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []

    def add_worker(self, snap: Dict[str, Any],
                   tags: Optional[Dict[str, Any]] = None) -> None:
        """Attach one worker snapshot.  ``tags`` (e.g. ``attempts``,
        ``degraded``, ``faults``) are threaded onto the snapshot's root
        spans when the trace is rendered."""
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"telemetry snapshot schema {snap.get('schema')!r} != "
                f"{SNAPSHOT_SCHEMA}"
            )
        self._workers.append((snap, dict(tags or {})))

    def worker_pids(self) -> List[int]:
        """Distinct worker PIDs, in first-seen order."""
        out: List[int] = []
        for snap, _ in self._workers:
            if snap["pid"] not in out:
                out.append(snap["pid"])
        return out

    # -- Chrome trace -------------------------------------------------------

    @staticmethod
    def _tagged_spans(snap: Dict[str, Any],
                      tags: Dict[str, Any]) -> List[Dict[str, Any]]:
        if not tags:
            return snap["spans"]
        recorded = {s["id"] for s in snap["spans"]}
        out = []
        for s in snap["spans"]:
            if s["parent"] is None or s["parent"] not in recorded:
                s = {**s, "attrs": {**s["attrs"], **tags}}
            out.append(s)
        return out

    def to_chrome_trace(self) -> Dict[str, Any]:
        """One trace, one lane per PID, driver timeline as the ruler."""
        t0 = self.parent["t0"]
        parent_pid = self.parent["pid"]
        out: List[Dict[str, Any]] = []
        lanes: Dict[int, List[Dict[str, Any]]] = {}

        def lane(pid: int, label: str) -> List[Dict[str, Any]]:
            if pid not in lanes:
                out.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": label}})
                lanes[pid] = []
            return lanes[pid]

        lane(parent_pid, DRIVER_LANE).extend(lane_trace_events(
            self.parent, pid=parent_pid, t0=t0))
        for snap, tags in self._workers:
            pid = snap["pid"]
            state = {**snap, "spans": self._tagged_spans(snap, tags)}
            lane(pid, _lane_label(pid, parent_pid)).extend(
                lane_trace_events(
                    state, pid=pid, t0=t0,
                    shift=clock_offset(snap, self.parent),
                )
            )
        for pid in lanes:
            # (ts, name) tie-break: same-timestamp events (counter
            # flushes) otherwise land in hash order, making the merged
            # trace unstable across runs with identical recordings.
            lanes[pid].sort(key=lambda e: (e["ts"], e["name"]))
            out.extend(lanes[pid])
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def write(self, path: str) -> str:
        """Write the merged Chrome trace to ``path``; returns it."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
        return path

    # -- metric aggregation -------------------------------------------------

    def _all_lanes(self):
        parent_pid = self.parent["pid"]
        yield DRIVER_LANE, self.parent
        for snap, _ in self._workers:
            yield _lane_label(snap["pid"], parent_pid), snap

    def merged_metrics(self) -> Dict[str, Any]:
        """Aggregate every lane's registry with per-lane provenance.

        Counters and histogram counts/sums add across lanes (two points
        run on one worker add into that worker's lane); gauges are
        last-write-wins per lane and reported per lane only.
        """
        counters: Dict[str, Dict[str, Any]] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        hists: Dict[str, Dict[str, Any]] = {}
        for label, snap in self._all_lanes():
            m = snap["metrics"]
            for name, value in m["counters"].items():
                c = counters.setdefault(name, {"total": 0, "lanes": {}})
                c["total"] += value
                c["lanes"][label] = c["lanes"].get(label, 0) + value
            for name, value in m["gauges"].items():
                gauges.setdefault(name, {})[label] = value
            for name, h in m["histograms"].items():
                agg = hists.setdefault(name, {
                    "count": 0, "sum": 0.0, "min": None, "max": None,
                    "lanes": {},
                })
                agg["count"] += h["count"]
                agg["sum"] += h["sum"]
                for key, pick in (("min", min), ("max", max)):
                    if h[key] is not None:
                        agg[key] = (h[key] if agg[key] is None
                                    else pick(agg[key], h[key]))
                agg["lanes"][label] = h

        def by_name(d: Dict[str, Any]) -> Dict[str, Any]:
            return {k: d[k] for k in sorted(d)}

        # Name-sorted output so serialized aggregates are byte-stable
        # regardless of which lane registered a metric first.
        return {"counters": by_name(counters), "gauges": by_name(gauges),
                "histograms": by_name(hists)}

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every lane (0 when absent)."""
        return sum(
            snap["metrics"]["counters"].get(name, 0)
            for _, snap in self._all_lanes()
        )
