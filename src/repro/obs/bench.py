"""Persistent perf-regression harness.

The paper's claims are quantitative, so the repo tracks its own
performance trajectory: :func:`run_bench` executes a pinned
``app x scheme x procs`` grid, timing each point's simulation N times
(wall-clock percentiles) and recording the deterministic
simulated-machine metrics — miss classes, NUMA local/remote, conflict
sets, and the Section-4.3 addressing-overhead counts — into a
schema-versioned snapshot.  :func:`save_snapshot` persists snapshots as
``results/bench/BENCH_<timestamp>.json`` plus a repo-root
``BENCH_latest.json`` pointer, and :func:`compare_snapshots` gates a
new snapshot against a baseline with noise-aware thresholds:

* **wall time** — min-of-N against min-of-N with a relative tolerance,
  and only when both snapshots come from the same host (a committed
  baseline from another machine can't gate wall time meaningfully);
* **simulated counters** — exact match (the simulator is
  deterministic, so *any* drift is a semantic change that must be
  either fixed or explicitly re-baselined);
* **wall-time ledger** (schema 3, from :mod:`repro.obs.perf`) — the
  row set and per-pass run counts are deterministic and gated exactly;
  per-row self times follow the wall rule above.

``python -m repro bench`` is the CLI;
``python -m repro bench --compare BENCH_latest.json`` exits nonzero on
regression, which CI uses as a gate
(:func:`repro.report.format_regression_table` renders the verdict).
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import core as _obs_core
from repro.util.atomicio import write_atomic

__all__ = [
    "SCHEMA_VERSION",
    "BenchComparison",
    "DeltaRow",
    "append_bench_series",
    "append_series",
    "compare_snapshots",
    "describe_host_mismatch",
    "host_fingerprint",
    "load_snapshot",
    "load_series_lines",
    "point_key",
    "run_bench",
    "save_snapshot",
    "series_path",
    "series_trends",
]

# Schema history:
#   1 — wall/sim (misses, addressing, numa, conflict) + provenance.
#   2 — adds sim.locality (reuse-distance / set-pressure / heatmap
#       fingerprint, exact-match gated) and the non-gated "profile"
#       key (top self-time functions; timing, so never compared).
#   3 — adds the per-point "perf" key (wall-time ledger from
#       repro.obs.perf — row set and counts exact-match gated,
#       self-time columns noise-gated like wall.min — plus the
#       collapsed-stack blob, never gated) and extends the host
#       fingerprint with cpu/cores so cross-host skips are
#       explainable.  Schema-2 baselines are incomparable; regenerate.
SCHEMA_VERSION = 3

DEFAULT_APPS = ("simple", "stencil5")
DEFAULT_SCHEMES = ("base", "comp", "data")
DEFAULT_PROCS = (1, 4)
DEFAULT_N = 16
DEFAULT_REPEATS = 3
DEFAULT_SCALE = 16
DEFAULT_OUT_DIR = os.path.join("results", "bench")
LATEST_POINTER = "BENCH_latest.json"

# History cap for the append-only series.jsonl: newest N lines are
# kept on rotation (mirrors the quarantine cap in repro.pipeline.cache
# — bound the on-disk history, keep the most recent evidence).
SERIES_KEEP = 256

DEFAULT_WALL_TOL = 0.30
# Absolute slack under the relative wall gate: scheduler jitter on a
# sub-10ms measurement easily exceeds 30% relative, so a regression
# must also be at least this many seconds to fail.
DEFAULT_WALL_ABS_FLOOR = 0.010
FLOAT_REL_TOL = 1e-9

# Statuses that fail the gate: a slower wall time, a drifted simulated
# counter, a vanished grid point, or an incomparable snapshot.
_FAILING = ("regressed", "changed", "missing", "incomparable")


def _cpu_model() -> str:
    """Best-effort CPU model string (``platform.processor()`` is empty
    on most Linux builds; fall back to /proc/cpuinfo)."""
    cpu = platform.processor()
    if not cpu:
        try:
            with open("/proc/cpuinfo") as fh:
                for line in fh:
                    if line.lower().startswith(("model name", "hardware")):
                        cpu = line.split(":", 1)[1].strip()
                        break
        except OSError:
            pass
    return cpu or platform.machine()


def host_fingerprint() -> Dict[str, Any]:
    """Identity of the measuring machine; wall-time comparisons are
    only meaningful between equal fingerprints.  The fields double as
    the explanation when a comparison skips its wall gate —
    :func:`describe_host_mismatch` names exactly which ones differ."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "node": platform.node(),
        "cpu": _cpu_model(),
        "cores": os.cpu_count() or 0,
    }


def describe_host_mismatch(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Compact ``field: x vs y`` listing of differing fingerprint
    fields — the human-readable reason a wall gate was skipped."""
    diffs = []
    for k in sorted(set(a) | set(b)):
        va, vb = a.get(k), b.get(k)
        if va != vb:
            diffs.append(f"{k}: {va!r} vs {vb!r}")
    return "; ".join(diffs)


def point_key(point: Dict[str, Any]) -> str:
    return f"{point['app']}/{point['scheme']}/P{point['nprocs']}"


def _percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of a non-empty sample list."""
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = q * (len(xs) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(xs) - 1)
    return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)


def _bench_point(session, point, prog, repeats: int) -> Dict[str, Any]:
    """Measure one grid coordinate (a
    :class:`~repro.pipeline.grid.GridPoint`) on the shared engine's
    program/machine mapping."""
    from repro.codegen.spmd import parse_scheme
    from repro.machine.simulate import simulate
    from repro.obs.perf import measure_point
    from repro.pipeline.grid import point_machine

    scheme = parse_scheme(point.scheme)
    nprocs = point.nprocs
    machine = point_machine(point, prog)
    # One observed window (private collector, "perf.point" root span)
    # measures the compile, captures the addressing-overhead counters
    # the optimized emitter emits, runs the detail simulation for the
    # deterministic machine metrics, and yields the wall-time ledger
    # plus — from a separate sampled run — the collapsed stacks.
    m = measure_point(session, prog, scheme, nprocs, machine,
                      locality=True, collect_stacks=True)
    res = m["res"]
    compile_s = m["compile_s"]
    addressing = m["addressing"]
    prov = m["provenance"]
    sim: Dict[str, Any] = {
        "total_time": res.total_time,
        "n_accesses": res.n_accesses,
        "misses": {k: int(v) for k, v in sorted(res.miss_breakdown.items())},
        "addressing": addressing,
    }
    if res.numa:
        sim["numa"] = {
            "local_misses": int(res.numa["local_misses"]),
            "remote_misses": int(res.numa["remote_misses"]),
            "local_ratio": float(res.numa["local_ratio"]),
        }
    if res.conflict_sets:
        cs = res.conflict_sets
        sim["conflict"] = {
            "replacement_misses": int(cs["replacement_misses"]),
            "nsets": int(cs["nsets"]),
            "max_per_set": int(cs["max_per_set"]),
        }
    if res.locality:
        # Deterministic locality fingerprint: lives under "sim" so the
        # exact-match gate covers it — a simulator rewrite that changes
        # any reuse/pressure histogram fails the bench comparison.
        sim["locality"] = res.locality

    # N timed repeats of the plain simulation for wall time (obs is
    # disabled here — run_bench turned it off around the grid, and
    # measure_point restored that state).
    spmd = m["spmd"]
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        simulate(spmd, machine)
        samples.append(time.perf_counter() - t0)

    # The hotspot fingerprint comes from measure_point's sampled run,
    # kept outside the timed repeats (the sampler's hook would inflate
    # them) and outside "sim" (wall-clock attribution is
    # nondeterministic, so the exact-match gate must never read it).
    hot = m["hot"]
    profile = {
        "wall_s": hot.wall_s,
        "samples": hot.samples,
        "top_self": [
            {"key": f.key, "self_s": f.self_s, "cum_s": f.cum_s}
            for f in hot.top(5, include_external=False)
        ],
        "modules": hot.by_module(),
    }
    return {
        "app": point.app,
        "scheme": point.scheme,
        "nprocs": nprocs,
        # Machine geometry fingerprint (DashConfig.fingerprint).  Not
        # under "sim", so the exact-match gate never reads it; `repro
        # diff` uses it to attribute divergences to machine-config
        # changes, and the result store keys on it.
        "machine_fp": machine.fingerprint(),
        "compile_s": compile_s,
        "wall": {
            "repeats": repeats,
            "samples": samples,
            "min": min(samples),
            "p50": _percentile(samples, 0.5),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        },
        "sim": sim,
        "profile": profile,
        # Schema 3: the wall-time ledger (row set + counts exact-match
        # gated, self-time noise-gated) and the collapsed-stack blob
        # (never gated; `repro perf`/flamegraphs consume it).
        "perf": {"ledger": m["ledger"], "stacks": m["stacks"]},
        # Decision provenance rides along for `repro diff` root-cause
        # attribution; compare_snapshots never reads it, so this key
        # never affects the regression gate.
        "provenance": [r.as_dict() for r in prov],
    }


def run_bench(
    apps: Sequence[str] = DEFAULT_APPS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    procs: Sequence[int] = DEFAULT_PROCS,
    n: int = DEFAULT_N,
    time_steps: Optional[int] = None,
    scale: int = DEFAULT_SCALE,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, Any]:
    """Run the grid and return one schema-versioned snapshot dict.

    The global obs state is saved and restored around the run (the
    harness uses private collectors to read compiler counters without
    polluting — or being polluted by — whatever the caller records).
    """
    from repro.codegen.spmd import parse_scheme, scheme_short_name
    from repro.pipeline.grid import GridSpec, point_program
    from repro.pipeline.session import CompileSession

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    parsed = [parse_scheme(s) for s in schemes]
    session = CompileSession()
    saved_enabled = _obs_core._enabled
    saved_collector = _obs_core._collector
    points: List[Dict[str, Any]] = []
    # The shared engine enumerates the grid; programs are built once
    # per app (they repeat across schemes/procs).
    spec = GridSpec(
        apps=tuple(apps),
        schemes=tuple(scheme_short_name(s) for s in parsed),
        procs=tuple(procs),
        n=n, time_steps=time_steps, scale=scale,
    )
    progs: Dict[str, Any] = {}
    try:
        obs.disable()
        for point in spec.points():
            if point.app not in progs:
                progs[point.app] = point_program(point)
            points.append(_bench_point(
                session, point, progs[point.app], repeats))
    finally:
        _obs_core._collector = saved_collector
        _obs_core._enabled = saved_enabled
    return {
        "schema": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "host": host_fingerprint(),
        "config": {
            "apps": list(apps),
            "schemes": [scheme_short_name(s) for s in parsed],
            "procs": list(procs),
            "n": n,
            "time_steps": time_steps,
            "scale": scale,
            "repeats": repeats,
        },
        "points": points,
    }


# -- persistence -------------------------------------------------------------

def save_snapshot(
    snap: Dict[str, Any],
    out_dir: os.PathLike = DEFAULT_OUT_DIR,
    latest: Optional[os.PathLike] = LATEST_POINTER,
) -> Tuple[str, Optional[str]]:
    """Write ``BENCH_<timestamp>.json`` under ``out_dir`` and refresh
    the ``latest`` pointer file; returns ``(snapshot_path,
    latest_path)``.  ``latest=None`` skips the pointer."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stamp = snap["created"].replace("-", "").replace(":", "")
    path = out / f"BENCH_{stamp}.json"
    serial = 0
    while path.exists():
        serial += 1
        path = out / f"BENCH_{stamp}-{serial}.json"
    write_atomic(path, json.dumps(snap, indent=1), fsync=False)
    latest_path: Optional[str] = None
    if latest is not None:
        pointer = {
            "schema": SCHEMA_VERSION,
            "pointer": str(path),
            "created": snap["created"],
        }
        write_atomic(latest, json.dumps(pointer, indent=1), fsync=False)
        latest_path = str(latest)
    return str(path), latest_path


def series_path() -> str:
    """The default benchmark-history file."""
    root = os.environ.get("REPRO_RESULTS_DIR", "results")
    return os.path.join(root, "bench", "series.jsonl")


def append_series(name: str, payload: Dict[str, Any],
                  path: Optional[os.PathLike] = None,
                  keep: int = SERIES_KEEP) -> str:
    """Append one experiment's measured series to the benchmark history
    (default ``$REPRO_RESULTS_DIR/bench/series.jsonl``): one
    timestamped, host-stamped JSON object per line, so every benchmark
    run grows a comparable time series next to the ``bench`` grid
    snapshots.  Returns the path written.

    The file is capped at ``keep`` lines: when an append pushes it
    over, the newest ``keep`` lines are rewritten atomically (temp file
    + rename) and the rotation is counted on the
    ``bench.series.rotated`` / ``bench.series.dropped`` obs counters.
    """
    if path is None:
        path = series_path()
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    line = {
        "schema": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "host": host_fingerprint(),
        "name": name,
        **payload,
    }
    with open(p, "a") as fh:
        fh.write(json.dumps(line, default=str) + "\n")
    if keep and keep > 0:
        with open(p) as fh:
            lines = fh.readlines()
        if len(lines) > keep:
            dropped = len(lines) - keep
            write_atomic(p, "".join(lines[-keep:]), fsync=False)
            obs.inc("bench.series.rotated")
            obs.counter("bench.series.dropped").add(dropped)
    return str(p)


def append_bench_series(snap: Dict[str, Any],
                        path: Optional[os.PathLike] = None) -> str:
    """Append a ``repro bench`` snapshot's per-point digest (wall p50,
    total miss count) to the series history, closing the loop that made
    ``series.jsonl`` write-only: every bench run becomes one comparable
    trend sample per grid point."""
    points = []
    for p in snap.get("points", []):
        sim = p.get("sim") or {}
        points.append({
            "point": point_key(p),
            "wall_p50": (p.get("wall") or {}).get("p50"),
            "misses": sum((sim.get("misses") or {}).values()),
        })
    return append_series("bench", {"kind": "bench", "points": points},
                         path=path)


def load_series_lines(path: Optional[os.PathLike] = None
                      ) -> List[Dict[str, Any]]:
    """Read the series history leniently: unparsable lines are dropped
    (the file is append-only across many runs; one garbled line must
    not hide the rest), a missing file is an empty history."""
    if path is None:
        path = series_path()
    lines: List[Dict[str, Any]] = []
    try:
        with open(path) as fh:
            raw = fh.readlines()
    except OSError:
        return lines
    for text in raw:
        text = text.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except ValueError:
            continue
        if isinstance(record, dict):
            lines.append(record)
    return lines


def series_trends(lines: Sequence[Dict[str, Any]],
                  wall_tol: float = DEFAULT_WALL_TOL,
                  wall_abs_floor: float = DEFAULT_WALL_ABS_FLOOR
                  ) -> List[Dict[str, Any]]:
    """Per-metric trend rows from the series history.

    Two line shapes feed the history: ``bench`` digests (per grid
    point: wall p50 + total misses, from :func:`append_bench_series`)
    and benchmark figure curves (``series: {scheme: [[procs,
    speedup], ...]}`` from the pytest harness).  Each is rolled up by
    its natural key and the last sample is judged against the previous
    one: wall time regresses when it grows past ``wall_tol`` relative
    *and* ``wall_abs_floor`` absolute (the bench gate's rule), speedup
    regresses when it shrinks past ``wall_tol`` relative, and a
    drifted miss count is flagged — the simulator is deterministic, so
    any miss drift is a semantic change.
    """
    bench_hist: Dict[str, List[Dict[str, Any]]] = {}
    curve_hist: Dict[str, List[Dict[str, Any]]] = {}
    for line in lines:
        created = line.get("created", "")
        if line.get("kind") == "bench":
            for p in line.get("points") or []:
                key = p.get("point")
                wall = p.get("wall_p50")
                if not key or not isinstance(wall, (int, float)):
                    continue
                bench_hist.setdefault(str(key), []).append({
                    "wall_p50": float(wall),
                    "misses": p.get("misses"),
                    "created": created,
                })
        elif isinstance(line.get("series"), dict):
            for scheme, pts in sorted(line["series"].items()):
                try:
                    procs, speedup = max(
                        ((float(p), float(s)) for p, s in pts),
                        key=lambda t: t[0])
                except (TypeError, ValueError):
                    continue
                key = f"{line.get('name', '?')}:{scheme}@P{procs:g}"
                curve_hist.setdefault(key, []).append({
                    "speedup": speedup,
                    "created": created,
                })

    rows: List[Dict[str, Any]] = []
    for key, hist in sorted(bench_hist.items()):
        last, prev = hist[-1], (hist[-2] if len(hist) > 1 else None)
        status, note = "new", ""
        if prev is not None:
            cur, base = last["wall_p50"], prev["wall_p50"]
            if (cur > base * (1.0 + wall_tol)
                    and cur - base > wall_abs_floor):
                status, note = "regressed", f"wall p50 over +{wall_tol:.0%}"
            elif (cur < base * (1.0 - wall_tol)
                    and base - cur > wall_abs_floor):
                status = "improved"
            else:
                status = "ok"
            if (last.get("misses") is not None
                    and prev.get("misses") is not None
                    and last["misses"] != prev["misses"]):
                status = "changed"
                note = (f"miss count drifted "
                        f"{prev['misses']} → {last['misses']}")
        rows.append({
            "key": key, "kind": "bench", "unit": "wall p50 s",
            "runs": len(hist), "value": round(last["wall_p50"], 6),
            "prev": (round(prev["wall_p50"], 6)
                     if prev is not None else None),
            "misses": last.get("misses"),
            "status": status, "note": note,
            "created": last.get("created", ""),
        })
    for key, hist in sorted(curve_hist.items()):
        last, prev = hist[-1], (hist[-2] if len(hist) > 1 else None)
        status, note = "new", ""
        if prev is not None:
            cur, base = last["speedup"], prev["speedup"]
            if cur < base * (1.0 - wall_tol):
                status, note = "regressed", f"speedup down >{wall_tol:.0%}"
            elif cur > base * (1.0 + wall_tol):
                status = "improved"
            else:
                status = "ok"
        rows.append({
            "key": key, "kind": "figure", "unit": "speedup",
            "runs": len(hist), "value": round(last["speedup"], 4),
            "prev": (round(prev["speedup"], 4)
                     if prev is not None else None),
            "misses": None,
            "status": status, "note": note,
            "created": last.get("created", ""),
        })
    return rows


def load_snapshot(path: os.PathLike) -> Dict[str, Any]:
    """Load a snapshot, transparently following pointer files (a
    ``BENCH_latest.json`` whose ``pointer`` names the real snapshot;
    relative pointers resolve against the pointer file's directory)."""
    path = Path(path)
    for _ in range(4):  # pointer chains are short; bound anyway
        with open(path) as fh:
            data = json.load(fh)
        target = data.get("pointer")
        if target is None:
            return data
        candidate = Path(target)
        if not candidate.is_absolute() and not candidate.exists():
            candidate = path.parent / target
        path = candidate
    raise ValueError(f"pointer chain too deep starting at {path}")


# -- comparison --------------------------------------------------------------

@dataclass
class DeltaRow:
    """One compared metric of one grid point."""

    point: str
    metric: str
    baseline: Any
    current: Any
    status: str  # ok | improved | regressed | changed | missing | new
                 # | skipped | incomparable
    note: str = ""

    @property
    def failing(self) -> bool:
        return self.status in _FAILING


@dataclass
class BenchComparison:
    """Outcome of one baseline-vs-current snapshot comparison."""

    rows: List[DeltaRow] = field(default_factory=list)
    wall_tol: float = DEFAULT_WALL_TOL
    wall_abs_floor: float = DEFAULT_WALL_ABS_FLOOR
    wall_gated: bool = True

    @property
    def regressions(self) -> List[DeltaRow]:
        return [r for r in self.rows if r.failing]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _flatten_sim(sim: Dict[str, Any], prefix: str = "sim") -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in sim.items():
        name = f"{prefix}.{key}"
        if isinstance(value, dict):
            flat.update(_flatten_sim(value, name))
        else:
            flat[name] = value
    return flat


def _values_match(a: Any, b: Any) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=FLOAT_REL_TOL, abs_tol=1e-12)
    return a == b


def compare_snapshots(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    wall_tol: float = DEFAULT_WALL_TOL,
    wall_abs_floor: float = DEFAULT_WALL_ABS_FLOOR,
) -> BenchComparison:
    """Gate ``current`` against ``baseline``.

    Simulated counters must match exactly (any drift fails); wall time
    fails only when the current min-of-N exceeds the baseline min-of-N
    by more than ``wall_tol`` relative AND ``wall_abs_floor`` seconds
    absolute — and is skipped entirely when the host fingerprints
    differ.
    """
    cmp = BenchComparison(wall_tol=wall_tol, wall_abs_floor=wall_abs_floor)
    if baseline.get("schema") != current.get("schema"):
        cmp.rows.append(DeltaRow(
            point="*", metric="schema",
            baseline=baseline.get("schema"), current=current.get("schema"),
            status="incomparable", note="snapshot schema differs",
        ))
        return cmp
    base_cfg = {k: v for k, v in baseline["config"].items()
                if k in ("n", "time_steps", "scale")}
    cur_cfg = {k: v for k, v in current["config"].items()
               if k in ("n", "time_steps", "scale")}
    if base_cfg != cur_cfg:
        cmp.rows.append(DeltaRow(
            point="*", metric="config",
            baseline=base_cfg, current=cur_cfg,
            status="incomparable",
            note="grids measured at different problem sizes",
        ))
        return cmp
    cmp.wall_gated = baseline.get("host") == current.get("host")
    host_note = "different host; wall gate off"
    if not cmp.wall_gated:
        mismatch = describe_host_mismatch(
            baseline.get("host") or {}, current.get("host") or {})
        if mismatch:
            host_note = f"different host ({mismatch}); wall gate off"

    cur_points = {point_key(p): p for p in current["points"]}
    seen = set()
    for bp in baseline["points"]:
        key = point_key(bp)
        seen.add(key)
        cp = cur_points.get(key)
        if cp is None:
            cmp.rows.append(DeltaRow(
                point=key, metric="*", baseline="present", current="absent",
                status="missing", note="grid point vanished",
            ))
            continue
        # Simulated machine counters: exact match.
        base_sim = _flatten_sim(bp["sim"])
        cur_sim = _flatten_sim(cp["sim"])
        for metric in sorted(set(base_sim) | set(cur_sim)):
            if metric not in base_sim or metric not in cur_sim:
                cmp.rows.append(DeltaRow(
                    point=key, metric=metric,
                    baseline=base_sim.get(metric),
                    current=cur_sim.get(metric),
                    status="changed", note="metric appeared/disappeared",
                ))
            elif not _values_match(base_sim[metric], cur_sim[metric]):
                cmp.rows.append(DeltaRow(
                    point=key, metric=metric,
                    baseline=base_sim[metric], current=cur_sim[metric],
                    status="changed",
                    note="simulated counter drifted (exact-match gate)",
                ))
        # Wall time: min-of-N with relative tolerance, same host only.
        base_min = bp["wall"]["min"]
        cur_min = cp["wall"]["min"]
        if not cmp.wall_gated:
            status, note = "skipped", host_note
        elif (cur_min > base_min * (1.0 + wall_tol)
              and cur_min - base_min > wall_abs_floor):
            status = "regressed"
            note = f"min-of-N wall time over +{wall_tol:.0%} threshold"
        elif (cur_min < base_min * (1.0 - wall_tol)
              and base_min - cur_min > wall_abs_floor):
            status, note = "improved", "consider re-baselining"
        else:
            status, note = "ok", ""
        cmp.rows.append(DeltaRow(
            point=key, metric="wall.min",
            baseline=base_min, current=cur_min, status=status, note=note,
        ))
        # Wall-time ledger (schema 3): the row set and anchor counts
        # are deterministic — any drift is "changed" regardless of
        # host — while per-row self time is wall-clock, so it uses the
        # same same-host + relative-AND-absolute rule as wall.min.
        # Quiet ledger rows are omitted (a point carries a dozen).
        base_led = (bp.get("perf") or {}).get("ledger")
        cur_led = (cp.get("perf") or {}).get("ledger")
        if base_led and cur_led:
            rows_a = {(r["kind"], r["name"]): r for r in base_led["rows"]}
            rows_b = {(r["kind"], r["name"]): r for r in cur_led["rows"]}
            for rk in sorted(set(rows_a) | set(rows_b)):
                kind, name = rk
                label = name if kind == "residual" else f"{kind}/{name}"
                ra, rb = rows_a.get(rk), rows_b.get(rk)
                if ra is None or rb is None:
                    cmp.rows.append(DeltaRow(
                        point=key, metric=f"perf.{label}",
                        baseline="present" if ra else "absent",
                        current="present" if rb else "absent",
                        status="changed",
                        note="ledger row appeared/disappeared",
                    ))
                    continue
                if kind != "residual" and ra["count"] != rb["count"]:
                    cmp.rows.append(DeltaRow(
                        point=key, metric=f"perf.{label}.count",
                        baseline=ra["count"], current=rb["count"],
                        status="changed",
                        note="ledger count drifted (exact-match gate)",
                    ))
                    continue
                if not cmp.wall_gated:
                    continue
                a, b = float(ra["self_s"]), float(rb["self_s"])
                if b > a * (1.0 + wall_tol) and b - a > wall_abs_floor:
                    cmp.rows.append(DeltaRow(
                        point=key, metric=f"perf.{label}.self_s",
                        baseline=a, current=b, status="regressed",
                        note=f"ledger self time over +{wall_tol:.0%} "
                             "threshold",
                    ))
    for key in cur_points:
        if key not in seen:
            cmp.rows.append(DeltaRow(
                point=key, metric="*", baseline="absent", current="present",
                status="new", note="not in baseline",
            ))
    return cmp
