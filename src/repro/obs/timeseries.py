"""Per-run metrics time series: totals become plottable curves.

The obs registry (:mod:`repro.obs.metrics`) only ever holds *current*
values — end-of-run totals.  For a long grid run the interesting
questions are trajectories: is throughput flat?  when did the cache
stop hitting?  is rss creeping?  This module gives each monitored run
an append-only JSONL series next to its journal: a periodic flusher
(driven by the grid's :class:`~repro.obs.runstate.RunMonitor`) samples
every registered counter/gauge/histogram plus the driver's own
progress snapshot into one line per tick.

File layout mirrors the journal — one header line then samples — and
the reader is just as lenient: a torn final line (the crash window) is
skipped and counted, a garbled interior line loses only itself.  The
series file is named ``TS_<run_id>.jsonl`` inside the journal
directory; the ``TS_`` prefix keeps it out of
:func:`~repro.pipeline.journal.list_runs`'s ``RUN_*.jsonl`` glob.

Samples are best-effort monitoring data, not crash-safety-critical
state: writes are flushed but (by default) not fsync'd, and any append
failure is counted (``ts.errors``) and swallowed — monitoring must
never take down the run it is watching.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, Any, Dict, List, Optional

from repro.obs import core

__all__ = [
    "TS_SCHEMA",
    "TimeseriesSink",
    "load_series",
    "ts_path",
]

TS_SCHEMA = 1


def ts_path(jdir: os.PathLike, run_id: str) -> Path:
    """Where a run's time-series file lives (next to its journal)."""
    return Path(jdir).expanduser() / f"TS_{run_id}.jsonl"


def _utcnow() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


class TimeseriesSink:
    """Single-writer append side of one run's metrics series."""

    def __init__(self, path: os.PathLike, run_id: str,
                 fsync: bool = False):
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self.samples = 0
        self.errors = 0
        self._fh: Optional[IO[str]] = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        except OSError:
            self.errors += 1
            core.inc("ts.errors")
            return
        self._append({
            "type": "header",
            "schema": TS_SCHEMA,
            "run_id": run_id,
            "created": _utcnow(),
            "pid": os.getpid(),
        })

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(
                json.dumps(record, sort_keys=True, default=str) + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except (OSError, ValueError, TypeError):
            self.errors += 1
            core.inc("ts.errors")
            return
        self.samples += 1
        core.inc("ts.samples")

    def sample(self, progress: Dict[str, Any]) -> None:
        """Append one tick: the driver's progress snapshot plus a full
        metrics snapshot (empty when telemetry is disabled)."""
        metrics: Dict[str, Any] = {}
        if core.enabled():
            metrics = core.collector().metrics.snapshot()
        self._append({
            "type": "sample",
            "t": round(time.time(), 3),
            "progress": progress,
            "metrics": metrics,
        })

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "TimeseriesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_series(path: os.PathLike) -> Dict[str, Any]:
    """Parse a series file leniently (journal-reader semantics).

    Returns ``{"header", "samples", "bad_lines", "torn_tail"}``; a
    missing or unreadable file yields an empty series rather than an
    error — reports and status must render without one.
    """
    out: Dict[str, Any] = {"header": None, "samples": [],
                           "bad_lines": 0, "torn_tail": False}
    try:
        with open(path) as fh:
            lines = fh.readlines()
    except OSError:
        return out
    samples: List[Dict[str, Any]] = out["samples"]
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if lineno == len(lines) - 1:
                out["torn_tail"] = True
            else:
                out["bad_lines"] += 1
            continue
        rtype = record.get("type")
        if rtype == "header" and out["header"] is None:
            out["header"] = record
        elif rtype == "sample":
            samples.append(record)
    return out
