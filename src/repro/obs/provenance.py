"""Decision provenance: *why* the compiler chose what it chose.

The paper's end-to-end results rest on a chain of heuristic decisions —
unimodular permutation selection (Section 3), the greedy decomposition
ladder and rank maximization (Section 5), BLOCK/CYCLIC folding, the
strip-mine + permute layout derivation (Section 4), and the div/mod
address optimizations (Section 4.4).  The tracing layer records *that*
those phases ran; this module records the decisions themselves so that
``python -m repro explain`` can render the decision tree for one
compilation and ``python -m repro diff`` can attribute a performance
delta between two runs to the first decision that diverged.

Model
-----
Every decision site calls :func:`record`, which appends a
:class:`DecisionRecord` to the innermost active *capture*.  When no
capture is active (plain library use, the simulator hot path, the
disabled-observability benchmark) ``record`` is a single truthiness
test — provenance never needs an enable flag and never perturbs
fingerprints or cache keys, because decisions are a pure function of
the same inputs the fingerprint already covers.

``PassManager.execute`` opens a capture around every pass body and
stores the captured records alongside the artifact in the cache
(:class:`ArtifactEnvelope`), so a cache hit — memory or disk — replays
the exact records of the original run and a warm session reproduces the
full log bit-identically.

Reason codes
------------
``reason`` strings are drawn from a small per-site vocabulary (see
``REASON_CATALOG``); `repro diff` compares full records, so reasons are
kept stable and machine-comparable.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import core as _core

__all__ = [
    "DecisionRecord",
    "ProvenanceLog",
    "ArtifactEnvelope",
    "capture",
    "record",
    "active",
    "collect_point",
    "load_run",
    "normalize_run",
    "diff_runs",
    "RunDiff",
    "PointDiff",
    "MetricDelta",
    "STAGE_ORDER",
    "REASON_CATALOG",
]

# Pipeline-ordered stages a record can belong to; explain renders groups
# in this order, diff uses it to break ties between diverging records.
STAGE_ORDER = ("unimodular", "decomposition", "folding", "layout", "addropt")

# site -> {reason code: meaning}.  Documentation + the vocabulary the
# diff attribution treats as stable.
REASON_CATALOG: Dict[str, Dict[str, str]] = {
    "unimodular.restructure": {
        "imperfect nest": "transform only applies to perfect nests",
        "already parallel": "outermost loop carries no dependence",
        "no communication-free direction": "nullspace test failed (Thm 3.1)",
        "no unimodular completion": "partial transform has no unimodular completion",
        "no legal tail order": "every inner order violates a dependence",
        "transform not unimodular": "completed matrix has |det| != 1",
        "transform not a permutation": "only permutation transforms are emitted",
        "identity permutation": "best legal order is the original order",
        "permutation breaks triangular bounds": "bounds not rectangular under permutation",
        "legal outermost-parallel permutation": "permutation moves a parallel loop outermost",
    },
    "decomp.ladder": {
        "first rung preserving parallelism": "lowest ladder rung with min entry rank >= 1",
        "no rung preserves parallelism": "nest excluded; decomposed as separate region",
    },
    "decomp.solver": {
        "max (gain, locality, dim-preference)": "greedy row choice maximizing rank gain",
        "communication-free stays 1-D": "no boundary communication; extra dims add nothing",
        "no candidate row": "no independent rowspace row adds parallelism",
        "max_dims reached": "decomposition rank capped by --max-dims",
    },
    "decomp.folding": {
        "triangular bounds couple mapped levels": "CYCLIC balances triangular iteration spaces",
        "pipelined nest prefers block-cyclic": "BLOCK_CYCLIC trades balance against pipeline startup",
        "default block": "BLOCK minimizes communication for rectangular spaces",
    },
    "datatrans.layout": {
        "undistributed": "array has no decomposition; layout untouched",
        "replicated": "replicated array is local everywhere; layout untouched",
        "single processor along mapped dims": "grid extent 1; nothing to localize",
        "comp-decomp only": "scheme leaves data in original order (owner info only)",
        "local optimization": "highest dim BLOCK already contiguous per processor",
        "strip-mine + permute": "processor dims moved rightmost to localize (Sec 4.2)",
    },
    "datatrans.legality": {
        "legality rejection": "derived transform invalid; fell back to identity",
    },
    "addropt.plan": {
        "strategy chosen by lowest per-iteration cost": "see detail field per record",
    },
}


def _plain(value: Any) -> Any:
    """Coerce attribute values to deterministic JSON-safe plain data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_plain(v) for v in items]
    return repr(value)


@dataclass
class DecisionRecord:
    """One compiler decision: what was chosen, out of what, and why."""

    site: str                      # e.g. "decomp.ladder"
    stage: str                     # one of STAGE_ORDER
    subject: str                   # nest / array / loop var the decision is about
    chosen: str                    # the selected option
    alternatives: List[str] = field(default_factory=list)
    reason: str = ""               # reason code (REASON_CATALOG) or detail string
    inputs: Dict[str, Any] = field(default_factory=dict)
    span_id: Optional[int] = None  # innermost open obs span, if tracing is on

    def as_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "stage": self.stage,
            "subject": self.subject,
            "chosen": self.chosen,
            "alternatives": list(self.alternatives),
            "reason": self.reason,
            "inputs": dict(self.inputs),
            "span_id": self.span_id,
        }


def record_identity(rec: Dict[str, Any]) -> str:
    """Canonical comparison key for a record dict: everything except the
    span id (which depends on unrelated tracing state)."""
    stripped = {k: v for k, v in rec.items() if k != "span_id"}
    return json.dumps(stripped, sort_keys=True, default=repr)


class ProvenanceLog:
    """Ordered per-compilation list of :class:`DecisionRecord`."""

    __slots__ = ("records",)

    def __init__(self, records: Optional[List[DecisionRecord]] = None):
        self.records: List[DecisionRecord] = list(records or [])

    def append(self, rec: DecisionRecord) -> None:
        self.records.append(rec)

    def extend(self, recs: Sequence[DecisionRecord]) -> None:
        self.records.extend(recs)

    def copy(self) -> "ProvenanceLog":
        return ProvenanceLog(list(self.records))

    def clear(self) -> None:
        self.records.clear()

    def stages(self) -> List[str]:
        seen: List[str] = []
        for r in self.records:
            if r.stage not in seen:
                seen.append(r.stage)
        return seen

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [r.as_dict() for r in self.records]

    def to_json(self, **meta: Any) -> str:
        payload = dict(meta)
        payload["n_decisions"] = len(self.records)
        payload["stages"] = self.stages()
        payload["decisions"] = self.as_dicts()
        return json.dumps(payload, indent=2, default=repr)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self.records)


@dataclass
class ArtifactEnvelope:
    """A cached pass artifact bundled with the decisions that produced
    it.  Stored *in place of* the bare value so cache bytes (and hit
    counts) are identical whether or not any consumer reads provenance;
    fingerprints hash programs, not artifacts, so they are untouched."""

    value: Any
    records: List[DecisionRecord]


def unwrap(artifact: Any) -> Tuple[Any, List[DecisionRecord]]:
    """Split a cached artifact into (value, records).  Bare values (from
    caches written before provenance existed, or seeded fixed points)
    carry no records."""
    if isinstance(artifact, ArtifactEnvelope):
        return artifact.value, artifact.records
    return artifact, []


# ---------------------------------------------------------------------------
# Capture stack

_capture_stack: List[List[DecisionRecord]] = []


def active() -> bool:
    """True while some capture is open (recording has a consumer)."""
    return bool(_capture_stack)


@contextmanager
def capture():
    """Collect decisions recorded in the dynamic extent into a list.

    Captures nest; records go to the innermost one only (a pass body's
    capture shadows any outer one, mirroring how cached artifacts carry
    their own records).
    """
    records: List[DecisionRecord] = []
    _capture_stack.append(records)
    try:
        yield records
    finally:
        _capture_stack.pop()


def record(site: str, stage: str, subject: Any, chosen: Any,
           alternatives: Sequence[Any] = (), reason: str = "",
           **inputs: Any) -> Optional[DecisionRecord]:
    """Append a decision to the innermost capture; no-op (one truthiness
    test) when nothing is capturing."""
    if not _capture_stack:
        return None
    rec = DecisionRecord(
        site=site,
        stage=stage,
        subject=str(subject),
        chosen=str(chosen),
        alternatives=[str(a) for a in alternatives],
        reason=reason,
        inputs={str(k): _plain(v) for k, v in inputs.items()},
        span_id=_core.current_span_id(),
    )
    _capture_stack[-1].append(rec)
    return rec


# ---------------------------------------------------------------------------
# High-level collection

def collect_point(session, prog, scheme, nprocs: int, *,
                  decomp_nprocs: Optional[int] = None,
                  line_pad_elements: Optional[int] = None):
    """Compile one grid point and gather its full decision log: the
    pass-pipeline decisions from the session plus the addropt decisions
    made while emitting optimized code.  Returns ``(spmd, log)``."""
    from repro.codegen.emit_optimized import emit_optimized_program

    spmd = session.compile(
        prog, scheme, nprocs,
        decomp_nprocs=decomp_nprocs, line_pad_elements=line_pad_elements,
    )
    log = session.last_provenance.copy()
    with capture() as recs:
        emit_optimized_program(spmd)
    log.extend(recs)
    return spmd, log


# ---------------------------------------------------------------------------
# Run loading + root-cause diffing

@dataclass
class MetricDelta:
    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> Optional[float]:
        if self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)


@dataclass
class PointDiff:
    """One grid point's differences between two runs."""

    key: str
    deltas: List[MetricDelta] = field(default_factory=list)
    culprit: Optional[Dict[str, Any]] = None       # diverging record in run B
    culprit_was: Optional[Dict[str, Any]] = None   # its counterpart in run A
    culprit_index: Optional[int] = None
    note: str = ""

    @property
    def significant(self) -> bool:
        """Wall time is noisy; a point only *fails* a diff when a
        deterministic (non-wall) metric moved."""
        return any(not d.metric.startswith("wall") for d in self.deltas)

    def score(self) -> float:
        best = 0.0
        for d in self.deltas:
            if d.metric.startswith("wall"):
                continue
            r = d.rel
            best = max(best, abs(r) if r is not None else float("inf"))
        return best


@dataclass
class RunDiff:
    points: List[PointDiff] = field(default_factory=list)
    missing_in_b: List[str] = field(default_factory=list)
    missing_in_a: List[str] = field(default_factory=list)
    n_compared: int = 0

    @property
    def identical(self) -> bool:
        return not (self.points or self.missing_in_a or self.missing_in_b)

    @property
    def significant(self) -> bool:
        return bool(self.missing_in_a or self.missing_in_b
                    or any(p.significant for p in self.points))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_compared": self.n_compared,
            "identical": self.identical,
            "significant": self.significant,
            "missing_in_a": list(self.missing_in_a),
            "missing_in_b": list(self.missing_in_b),
            "points": [
                {
                    "key": p.key,
                    "deltas": [
                        {"metric": d.metric, "a": d.a, "b": d.b,
                         "delta": d.delta, "rel": d.rel}
                        for d in p.deltas
                    ],
                    "culprit": p.culprit,
                    "culprit_was": p.culprit_was,
                    "culprit_index": p.culprit_index,
                    "note": p.note,
                }
                for p in self.points
            ],
        }


def load_run(path: str) -> Dict[str, Any]:
    """Load a run file: a bench snapshot (schema 1, possibly a pointer
    file) or a ``batch --json`` output.  Raises ValueError for anything
    else."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and "pointer" in data:
        from repro.obs.bench import load_snapshot

        return load_snapshot(path)
    if isinstance(data, dict) and ("points" in data or "results" in data):
        return data
    raise ValueError(
        f"{path}: not a bench snapshot or batch --json output "
        "(expected a 'points' or 'results' key)"
    )


def _flatten(prefix: str, obj: Any, out: Dict[str, float]) -> None:
    if isinstance(obj, dict):
        for k in sorted(obj):
            _flatten(f"{prefix}.{k}" if prefix else str(k), obj[k], out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def normalize_run(data: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Normalize either run format to ``{point key: {"metrics": {...},
    "provenance": [record dicts], "machine_fp": str | None}}``.
    Metrics are flat name -> number; wall times get a ``wall.`` prefix
    so the diff can treat them as noisy."""
    out: Dict[str, Dict[str, Any]] = {}
    if "points" in data:  # bench snapshot
        for p in data.get("points") or []:
            key = f"{p.get('app')}/{p.get('scheme')}/P{p.get('nprocs')}"
            metrics: Dict[str, float] = {}
            _flatten("sim", p.get("sim") or {}, metrics)
            _flatten("wall", p.get("wall") or {}, metrics)
            out[key] = {
                "metrics": metrics,
                "provenance": list(p.get("provenance") or []),
                "machine_fp": p.get("machine_fp"),
            }
        return out
    if "results" in data:  # batch --json
        for r in data.get("results") or []:
            key = f"{r.get('app')}/{r.get('scheme')}/P{r.get('nprocs')}"
            metrics = {}
            if isinstance(r.get("total_time"), (int, float)):
                metrics["sim.total_time"] = float(r["total_time"])
            if isinstance(r.get("n_accesses"), (int, float)):
                metrics["sim.n_accesses"] = float(r["n_accesses"])
            _flatten("sim.misses", r.get("miss_breakdown") or {}, metrics)
            if isinstance(r.get("elapsed"), (int, float)):
                metrics["wall.elapsed"] = float(r["elapsed"])
            out[key] = {
                "metrics": metrics,
                "provenance": list(r.get("provenance") or []),
            }
        return out
    raise ValueError("run data has neither 'points' nor 'results'")


def _first_divergence(a_recs: List[Dict[str, Any]],
                      b_recs: List[Dict[str, Any]]):
    """Index + pair of the first records that differ (span id ignored),
    or None when the logs agree."""
    for i in range(max(len(a_recs), len(b_recs))):
        ra = a_recs[i] if i < len(a_recs) else None
        rb = b_recs[i] if i < len(b_recs) else None
        if ra is None or rb is None:
            return i, ra, rb
        if record_identity(ra) != record_identity(rb):
            return i, ra, rb
    return None


def diff_runs(run_a: Dict[str, Any], run_b: Dict[str, Any]) -> RunDiff:
    """Align two runs point-by-point, collect metric deltas, and
    attribute each differing point to the first diverging decision
    record.  Points are ranked by largest relative non-wall delta."""
    a = normalize_run(run_a)
    b = normalize_run(run_b)
    diff = RunDiff()
    diff.missing_in_b = sorted(k for k in a if k not in b)
    diff.missing_in_a = sorted(k for k in b if k not in a)
    for key in sorted(k for k in a if k in b):
        diff.n_compared += 1
        ma, mb = a[key]["metrics"], b[key]["metrics"]
        deltas = [
            MetricDelta(m, ma[m], mb[m])
            for m in sorted(set(ma) & set(mb))
            if ma[m] != mb[m]
        ]
        if not deltas:
            continue
        pd = PointDiff(key=key, deltas=deltas)
        fa = a[key].get("machine_fp")
        fb = b[key].get("machine_fp")
        if fa and fb and fa != fb:
            # Different simulated-machine geometry: the runs measured
            # different machines, so no compiler decision is to blame.
            pd.note = (
                "machine fingerprint differs "
                f"({fa[:12]}.. vs {fb[:12]}..); divergence attributed "
                "to a machine-config change, not a compiler decision"
            )
            diff.points.append(pd)
            continue
        pa, pb = a[key]["provenance"], b[key]["provenance"]
        if not pa and not pb:
            pd.note = "no provenance recorded in either run; cannot attribute"
        elif not pa or not pb:
            which = "A" if not pa else "B"
            pd.note = f"no provenance recorded in run {which}; cannot attribute"
        else:
            div = _first_divergence(pa, pb)
            if div is None:
                pd.note = ("decision logs identical; delta not attributable "
                           "to a compiler decision (measurement noise?)")
            else:
                pd.culprit_index, pd.culprit_was, pd.culprit = div
        diff.points.append(pd)
    diff.points.sort(key=lambda p: (-p.score(), p.key))
    return diff
