"""Self-contained flamegraph SVG builder for collapsed stacks.

Input is the classic folded/collapsed format — one stack per line,
innermost frame last, value after the final space::

    repro/machine/simulate.py:simulate;repro/machine/trace.py:program_traces 0.0042

(:meth:`repro.obs.hotspot.HotspotReport.collapsed` and
``repro perf record --stacks`` both emit it, and external folded files
from ``stackcollapse-*.pl`` parse the same way).

The output is a single standalone SVG document — no scripts, no
external references beyond the mandatory SVG ``xmlns``, hover detail
via ``<title>`` elements — so it can be committed, attached to CI
artifacts, or opened from ``file://`` with nothing else present.  The
rendering is deterministic: children are laid out name-sorted, colors
are derived from a hash of the frame name (classic flamegraph "warm"
palette), and equal input always yields byte-identical output, which
lets tests and CI diff the artifact directly.

Escaping is shared with :mod:`repro.obs.html` so frame names with
``<``/``&`` (e.g. the ``<external>`` bucket) stay well-formed XML.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Mapping, Union

from repro.obs.html import esc

__all__ = ["parse_collapsed", "flamegraph_svg"]

ROW_H = 17          # pixels per stack depth level
HEADER_H = 30       # title band at the top
FOOTER_H = 6
FONT_PX = 11
CHAR_W = 6.6        # approx monospace advance at FONT_PX — label budget
MIN_LABEL_W = 30.0  # frames narrower than this get no text, only <title>

_STYLE = (
    "text{font-family:ui-monospace,Menlo,monospace;"
    f"font-size:{FONT_PX}px;fill:#1c1c1c}}"
    "rect{stroke:#fff;stroke-width:0.4}"
)


def parse_collapsed(lines: Iterable[str]) -> Dict[str, float]:
    """Parse folded-stack lines into ``{stack: value}``.

    Duplicate stacks accumulate; blank lines are skipped.  Raises
    :class:`ValueError` on a line without a ``stack value`` split.
    """
    out: Dict[str, float] = {}
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        stack, _, val = line.rpartition(" ")
        try:
            value = float(val)
        except ValueError:
            stack = ""
        if not stack:
            raise ValueError(f"malformed collapsed-stack line: {raw!r}")
        out[stack] = out.get(stack, 0.0) + value
    return out


class _Node:
    __slots__ = ("value", "children")

    def __init__(self) -> None:
        self.value = 0.0
        self.children: Dict[str, "_Node"] = {}


def _tree(stacks: Mapping[str, float]) -> _Node:
    root = _Node()
    for stack in sorted(stacks):
        v = float(stacks[stack])
        if v <= 0.0:
            continue
        root.value += v
        node = root
        for frame in stack.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node()
            child.value += v
            node = child
    return root


def _color(name: str) -> str:
    """Classic flamegraph warm color, deterministic per frame name."""
    d = hashlib.sha256(name.encode("utf-8")).digest()
    return f"rgb({205 + d[0] % 51},{d[1] % 231},{d[2] % 56})"


def flamegraph_svg(
    stacks: Union[Mapping[str, float], Iterable[str]],
    title: str = "flamegraph",
    width: int = 1200,
    min_frac: float = 0.001,
) -> str:
    """Render collapsed stacks as a standalone icicle-layout SVG.

    ``stacks`` is either a ``{stack: seconds}`` mapping or an iterable
    of folded lines (fed through :func:`parse_collapsed`).  Frames
    narrower than ``min_frac`` of the total are pruned, but the layout
    still advances by their true width so siblings stay aligned.
    """
    if not isinstance(stacks, Mapping):
        stacks = parse_collapsed(stacks)
    root = _tree(stacks)
    total = root.value
    scale = (width / total) if total > 0 else 0.0
    body: List[str] = []
    max_depth = 0

    def frame(name: str, node: _Node, x: float, depth: int) -> None:
        nonlocal max_depth
        w = node.value * scale
        if w < width * min_frac:
            return
        max_depth = max(max_depth, depth)
        y = HEADER_H + depth * ROW_H
        pct = node.value / total
        tip = f"{name} — {node.value:.4g}s ({pct:.1%})"
        parts = [
            "<g>",
            f"<title>{esc(tip)}</title>",
            f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}"'
            f' height="{ROW_H - 1}" fill="{_color(name)}" rx="1"/>',
        ]
        if w >= MIN_LABEL_W:
            budget = int((w - 6) / CHAR_W)
            label = name if len(name) <= budget else name[: max(budget - 1, 1)] + "…"
            if budget >= 3:
                parts.append(
                    f'<text x="{x + 3:.2f}" y="{y + FONT_PX + 2}">'
                    f"{esc(label)}</text>"
                )
        parts.append("</g>")
        body.append("".join(parts))
        cx = x
        for cname in sorted(node.children):
            child = node.children[cname]
            frame(cname, child, cx, depth + 1)
            cx += child.value * scale  # true width even when pruned

    if total > 0:
        frame("all", root, 0.0, 0)
    height = HEADER_H + (max_depth + 1) * ROW_H + FOOTER_H
    head = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" viewBox="0 0 {width} {height}">',
        f"<style>{_STYLE}</style>",
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#fdfdfd"/>',
        f'<text x="6" y="{FONT_PX + 7}" font-weight="bold">'
        f"{esc(title)} — total {total:.4g}s, {len(stacks)} stack(s)</text>",
    ]
    if total <= 0:
        body.append(
            f'<text x="6" y="{HEADER_H + FONT_PX + 2}">(no samples)</text>'
        )
    return "\n".join(head + body) + "\n</svg>\n"
