"""Span tracer, structured event log, and the global enable switch.

One process-global :class:`Collector` accumulates three kinds of
telemetry:

* **spans** — nested context-manager timings (``with obs.span(...)``),
  each carrying free-form attributes and attached counters;
* **events** — instant structured records (``obs.event(...)``),
  parented to whichever span is open when they fire;
* **metrics** — process-wide counters/gauges/histograms
  (:mod:`repro.obs.metrics`).

Observability is **off by default**; enable it programmatically with
:func:`enable` or by exporting ``REPRO_OBS=1``.  The disabled fast path
is strict: :func:`span` returns the one shared :data:`NOOP_SPAN`,
:func:`counter` returns the shared no-op metric, and :func:`event` /
:func:`inc` return immediately after a single flag test — no objects
are allocated and nothing is recorded.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import NOOP_METRIC, MetricsRegistry

ENV_FLAG = "REPRO_OBS"


class _NoopSpan:
    """Shared do-nothing span; also its own context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def add(self, counter: str, value: int = 1) -> "_NoopSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


@dataclass
class Event:
    """One instant structured record."""

    name: str
    ts: float
    cat: str = "event"
    span_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class Span:
    """A timed region of the pipeline.

    Use as a context manager; nesting is tracked by the collector's
    span stack, so children know their parent without threading ids
    through call signatures.
    """

    __slots__ = (
        "name", "cat", "span_id", "parent_id", "start", "end",
        "attrs", "counters", "_collector",
    )

    def __init__(self, collector: "Collector", name: str, cat: str,
                 span_id: int, attrs: Dict[str, Any]):
        self._collector = collector
        self.name = name
        self.cat = cat
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.end = 0.0
        self.attrs = attrs
        self.counters: Dict[str, float] = {}

    def __enter__(self) -> "Span":
        stack = self._collector._stack
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        stack = self._collector._stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._collector.spans.append(self)
        return False

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def add(self, counter: str, value: float = 1) -> "Span":
        self.counters[counter] = self.counters.get(counter, 0) + value
        return self

    @property
    def duration(self) -> float:
        return (self.end or time.perf_counter()) - self.start


class Collector:
    """Accumulates spans, events and metrics for one recording."""

    def __init__(self):
        self.t0 = time.perf_counter()
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, cat: str = "compiler", **attrs) -> Span:
        sid = self._next_id
        self._next_id += 1
        return Span(self, name, cat, sid, attrs)

    def event(self, name: str, cat: str = "event", **attrs) -> Event:
        parent = self._stack[-1].span_id if self._stack else None
        ev = Event(name, time.perf_counter(), cat, parent, attrs)
        self.events.append(ev)
        return ev


_enabled = os.environ.get(ENV_FLAG, "0").lower() not in ("", "0", "false", "no")
_collector = Collector()


def enabled() -> bool:
    """Whether telemetry is being recorded."""
    return _enabled


def enable(reset: bool = True) -> Collector:
    """Turn recording on (optionally starting a fresh collector)."""
    global _enabled, _collector
    if reset:
        _collector = Collector()
    _enabled = True
    return _collector


def disable() -> None:
    """Turn recording off; collected data stays readable."""
    global _enabled
    _enabled = False


def reset() -> Collector:
    """Discard collected data (without changing the enable flag)."""
    global _collector
    _collector = Collector()
    return _collector


def collector() -> Collector:
    """The active collector (read it to export/inspect)."""
    return _collector


def span(name: str, cat: str = "compiler", **attrs):
    """Open a timed span; the shared no-op span when disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _collector.span(name, cat, **attrs)


def current_span_id():
    """Id of the innermost open span, or ``None`` when tracing is off or
    no span is open.  Used by provenance records to anchor decisions to
    the pass span that produced them."""
    if not _enabled:
        return None
    stack = _collector._stack
    return stack[-1].span_id if stack else None


def event(name: str, cat: str = "event", **attrs) -> None:
    """Record an instant structured event (dropped when disabled)."""
    if not _enabled:
        return
    _collector.event(name, cat, **attrs)


def inc(name: str, value: float = 1) -> None:
    """Bump a process-wide counter (dropped when disabled)."""
    if not _enabled:
        return
    _collector.metrics.counter(name).add(value)


def counter(name: str):
    """A counter instrument; the shared no-op metric when disabled."""
    if not _enabled:
        return NOOP_METRIC
    return _collector.metrics.counter(name)


def gauge(name: str):
    """A gauge instrument; the shared no-op metric when disabled."""
    if not _enabled:
        return NOOP_METRIC
    return _collector.metrics.gauge(name)


def histogram(name: str):
    """A histogram instrument; the shared no-op metric when disabled."""
    if not _enabled:
        return NOOP_METRIC
    return _collector.metrics.histogram(name)
