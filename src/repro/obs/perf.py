"""Differential performance attribution: the wall-time ledger and the
``repro perf`` engines.

The repo could already *detect* a wall regression (``bench --compare``)
and root-cause *semantic* divergence (``repro diff`` over decision
provenance); this module closes the remaining loop by attributing a
wall-time delta to the passes, simulator phases, and functions
responsible.  Three pieces:

* :func:`build_ledger` — an **exhaustive, reconciled** accounting of
  one recording.  Every span's *self* time (duration minus its direct
  children) is rolled up into the nearest enclosing **anchor** row —
  ``pass.<name>`` spans from :class:`~repro.pipeline.manager.PassManager`,
  the simulator's ``sim.phase``/``sim.trace``/``sim.classify``/
  ``sim.locality`` hooks — or an ``other/<span>`` row when no anchor
  encloses it.  The difference between the measured wall total and the
  sum of all span self-times lands in an explicit ``<unattributed>``
  residual row, so the rows **must** sum back to the measured total:
  the accounting is falsifiable, and
  :func:`ledger_reconciles` is the check tests run on every point.
* :func:`measure_point` / :func:`record_point` — one observed
  compile + simulate window producing the ledger, the deterministic
  machine metrics, and a collapsed-stack sample
  (:mod:`repro.obs.flame` renders it); ``repro bench`` stores both per
  grid point since snapshot schema 3.
* :func:`perf_diff` — aligns two runs (bench snapshots or ``perf
  record`` payloads) and ranks the ledger rows whose self-time moved,
  with the same noise discipline as ``bench --compare``: row *sets*
  and *counts* are deterministic and gated exactly; self-time columns
  are gated only on the same host and only past a relative tolerance
  AND an absolute floor.

Ledger reconciliation rules (the falsifiability contract):

1. ``sum(row.self_s for all rows) == total_s`` to float rounding —
   the span-tree self-time decomposition is exact, and the residual
   row absorbs everything outside any span.
2. ``<unattributed>`` is never negative beyond rounding: the total is
   clocked from *before* the root span opens.
3. Anchor row counts equal the number of times the anchor span itself
   ran (descendant spans add time, never count), so pass-row counts
   are exactly the pass-manager run counts — deterministic, and
   exact-match-gated by ``bench --compare``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.obs import core as _obs_core

__all__ = [
    "PERF_SCHEMA",
    "UNATTRIBUTED",
    "PerfDiff",
    "PerfRowDelta",
    "build_ledger",
    "ledger_reconciles",
    "measure_point",
    "perf_diff",
    "record_point",
]

PERF_SCHEMA = 1
UNATTRIBUTED = "<unattributed>"

# Reconciliation slack: the decomposition is exact, so only float
# rounding separates the row sum from the measured total.
RECONCILE_REL_TOL = 1e-6
RECONCILE_ABS_TOL = 1e-6


def _anchor_key(name: str, attrs: Mapping[str, Any]
                ) -> Optional[Tuple[str, str]]:
    """The ledger row a span *is* (not merely contributes to)."""
    if name.startswith("pass."):
        return ("pass", name[len("pass."):])
    if name == "sim.phase":
        return ("phase", str(attrs.get("nest", "?")))
    if name.startswith("sim.trace"):
        return ("sim", "trace")
    if name == "sim.classify":
        return ("sim", "classify")
    if name == "sim.locality":
        return ("sim", "locality")
    if name == "sim.simulate":
        return ("sim", "simulate")
    return None


def build_ledger(collector: Optional[_obs_core.Collector] = None,
                 total_s: float = 0.0) -> Dict[str, Any]:
    """Roll one recording's spans up into the wall-time ledger.

    ``total_s`` is the externally measured wall total the rows must
    reconcile against; the gap between it and the span sum becomes the
    ``<unattributed>`` residual row (kind ``residual``, count 0).
    """
    c = collector or _obs_core.collector()
    spans = list(c.spans)
    by_id = {s.span_id: s for s in spans}
    child_sum: Dict[int, float] = {}
    for s in spans:
        if s.parent_id in by_id:
            child_sum[s.parent_id] = (
                child_sum.get(s.parent_id, 0.0) + (s.end - s.start))

    anchor_cache: Dict[int, Optional[Tuple[str, str]]] = {}

    def anchor_of(s: _obs_core.Span) -> Optional[Tuple[str, str]]:
        if s.span_id in anchor_cache:
            return anchor_cache[s.span_id]
        key = _anchor_key(s.name, s.attrs)
        if key is None and s.parent_id in by_id:
            key = anchor_of(by_id[s.parent_id])
        anchor_cache[s.span_id] = key
        return key

    rows: Dict[Tuple[str, str], Dict[str, Any]] = {}
    span_sum = 0.0
    for s in spans:
        self_s = (s.end - s.start) - child_sum.get(s.span_id, 0.0)
        span_sum += self_s
        key = anchor_of(s) or ("other", s.name)
        row = rows.get(key)
        if row is None:
            row = rows[key] = {"kind": key[0], "name": key[1],
                               "self_s": 0.0, "count": 0}
        row["self_s"] += self_s
        # Only the anchor span itself bumps the count; descendants
        # roll time in silently.  "other" rows count raw spans.
        if key[0] == "other" or _anchor_key(s.name, s.attrs) == key:
            row["count"] += 1
    unattributed = total_s - span_sum
    out_rows = [rows[k] for k in sorted(rows)]
    out_rows.append({"kind": "residual", "name": UNATTRIBUTED,
                     "self_s": unattributed, "count": 0})
    return {
        "total_s": total_s,
        "attributed_s": span_sum,
        "unattributed_s": unattributed,
        "rows": out_rows,
    }


def ledger_reconciles(ledger: Mapping[str, Any],
                      rel_tol: float = RECONCILE_REL_TOL,
                      abs_tol: float = RECONCILE_ABS_TOL
                      ) -> Tuple[bool, float]:
    """Check rule 1: rows (incl. residual) sum to the measured total.

    Returns ``(ok, row_sum)`` so callers can report the drift.
    """
    total = float(ledger["total_s"])
    row_sum = sum(float(r["self_s"]) for r in ledger["rows"])
    ok = abs(row_sum - total) <= max(abs_tol, rel_tol * abs(total))
    return ok, row_sum


# -- measurement -------------------------------------------------------------

def measure_point(session, prog, scheme, nprocs: int, machine, *,
                  locality: bool = True, collect_stacks: bool = True,
                  interval: Optional[int] = None) -> Dict[str, Any]:
    """One observed compile + detail-simulate window for one point.

    Opens a private collector, records the whole window under a
    ``perf.point`` root span, and returns the ledger, the simulation
    result (deterministic machine metrics), the addressing counters,
    the captured decision provenance, and — from a *separate* sampled
    run kept outside the ledger window, since the profiling hook would
    inflate it — the hotspot report and collapsed stacks.  The global
    obs state is saved and restored.
    """
    from repro.codegen.emit_optimized import emit_optimized_program
    from repro.machine.simulate import simulate
    from repro.obs import provenance
    from repro.obs.hotspot import HotspotProfiler

    saved_enabled = _obs_core._enabled
    saved_collector = _obs_core._collector
    try:
        obs.enable(reset=True)
        t_start = time.perf_counter()
        with obs.span("perf.point", cat="perf", program=prog.name,
                      scheme=scheme.value, nprocs=nprocs):
            t0 = time.perf_counter()
            spmd = session.compile(prog, scheme, nprocs)
            compile_s = time.perf_counter() - t0
            prov = session.last_provenance.copy()
            with provenance.capture() as addr_records:
                emit_optimized_program(spmd)
            prov.extend(addr_records)
            res = simulate(spmd, machine, detail=True, locality=locality)
        total_s = time.perf_counter() - t_start
        counters = obs.collector().metrics.snapshot()["counters"]
        addressing = {
            name.split(".", 1)[1]: value
            for name, value in counters.items()
            if name.startswith("addropt.")
        }
        ledger = build_ledger(obs.collector(), total_s)
    finally:
        _obs_core._collector = saved_collector
        _obs_core._enabled = saved_enabled

    kw: Dict[str, Any] = {"collect_stacks": collect_stacks}
    if interval is not None:
        kw["interval"] = interval
    prof = HotspotProfiler(**kw)
    prof.start()
    try:
        simulate(spmd, machine)
    finally:
        hot = prof.stop()
    return {
        "spmd": spmd,
        "res": res,
        "compile_s": compile_s,
        "addressing": addressing,
        "ledger": ledger,
        "hot": hot,
        "stacks": hot.collapsed(),
        "provenance": prov,
    }


def record_point(app: str, scheme, nprocs: int, *, n: int = 16,
                 time_steps: Optional[int] = None, scale: int = 16,
                 interval: Optional[int] = None) -> Dict[str, Any]:
    """``repro perf record``: measure one (app, scheme, procs) point
    on the shared grid engine's program/machine mapping and return a
    bench-snapshot-shaped payload (``provenance.load_run`` and
    :func:`perf_diff` both accept it directly)."""
    from datetime import datetime, timezone

    from repro.codegen.spmd import scheme_short_name
    from repro.obs.bench import host_fingerprint
    from repro.pipeline.grid import GridSpec, point_machine, point_program
    from repro.pipeline.session import CompileSession

    spec = GridSpec(apps=(app,),
                    schemes=(scheme_short_name(scheme),),
                    procs=(int(nprocs),),
                    n=n, time_steps=time_steps, scale=scale)
    point = spec.points()[0]
    prog = point_program(point)
    machine = point_machine(point, prog)
    m = measure_point(CompileSession(), prog, scheme, nprocs,
                      machine, locality=False, collect_stacks=True,
                      interval=interval)
    res = m["res"]
    return {
        "schema": PERF_SCHEMA,
        "kind": "perf",
        "created": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "host": host_fingerprint(),
        "config": {"app": app, "scheme": point.scheme, "nprocs": nprocs,
                   "n": n, "time_steps": time_steps, "scale": scale},
        "points": [{
            "app": point.app,
            "scheme": point.scheme,
            "nprocs": nprocs,
            "machine_fp": machine.fingerprint(),
            "compile_s": m["compile_s"],
            "sim": {"total_time": res.total_time,
                    "n_accesses": res.n_accesses},
            "perf": {"ledger": m["ledger"], "stacks": m["stacks"]},
        }],
    }


# -- diffing -----------------------------------------------------------------

@dataclass
class PerfRowDelta:
    """One aligned ledger row of one grid point."""

    point: str
    row: str    # "pass/layout", "phase/<nest>", "sim/trace", residual name
    kind: str
    baseline: Optional[float]  # self_s, seconds
    current: Optional[float]
    base_count: Optional[int] = None
    cur_count: Optional[int] = None
    status: str = "ok"  # ok | regressed | improved | changed | skipped
    note: str = ""

    @property
    def delta(self) -> float:
        return (self.current or 0.0) - (self.baseline or 0.0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point, "row": self.row, "kind": self.kind,
            "baseline": self.baseline, "current": self.current,
            "base_count": self.base_count, "cur_count": self.cur_count,
            "delta": self.delta, "status": self.status, "note": self.note,
        }


@dataclass
class PerfDiff:
    """Outcome of one run-vs-run ledger alignment."""

    rows: List[PerfRowDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    n_points: int = 0
    n_rows: int = 0
    wall_gated: bool = True
    host_note: str = ""
    wall_tol: float = 0.30
    wall_abs_floor: float = 0.010

    @property
    def significant(self) -> bool:
        return any(r.status in ("regressed", "improved", "changed")
                   for r in self.rows)

    @property
    def culprits(self) -> List[PerfRowDelta]:
        return [r for r in self.rows
                if r.status in ("regressed", "improved", "changed")]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rows": [r.as_dict() for r in self.rows],
            "notes": list(self.notes),
            "n_points": self.n_points,
            "n_rows": self.n_rows,
            "wall_gated": self.wall_gated,
            "host_note": self.host_note,
            "wall_tol": self.wall_tol,
            "wall_abs_floor": self.wall_abs_floor,
            "significant": self.significant,
        }


def _point_ledgers(run: Mapping[str, Any]
                   ) -> Dict[str, Optional[Dict[str, Any]]]:
    """Per-point ledgers of any loadable run shape.

    Bench snapshots (schema ≥ 3) and ``perf record`` payloads carry
    ``points[*].perf.ledger``; older snapshots and ``batch --json``
    runs map to ``None`` (alignable, but nothing to compare)."""
    out: Dict[str, Optional[Dict[str, Any]]] = {}
    for p in run.get("points") or run.get("results") or []:
        if not isinstance(p, dict):
            continue
        key = (f"{p.get('app', '?')}/{p.get('scheme', '?')}"
               f"/P{p.get('nprocs', '?')}")
        out[key] = (p.get("perf") or {}).get("ledger")
    return out


def perf_diff(run_a: Mapping[str, Any], run_b: Mapping[str, Any],
              wall_tol: float = 0.30,
              wall_abs_floor: float = 0.010) -> PerfDiff:
    """Align two runs' ledgers and rank the rows that moved.

    Mirrors the ``bench --compare`` noise discipline: the row *set*
    and anchor *counts* are deterministic, so any drift is
    ``changed`` (significant) regardless of host; ``self_s`` columns
    are wall-clock, so they are compared only when both runs share a
    host fingerprint, and flagged only past ``wall_tol`` relative AND
    ``wall_abs_floor`` seconds absolute.  Rows come back ranked by
    absolute self-time movement, largest first.
    """
    pd = PerfDiff(wall_tol=wall_tol, wall_abs_floor=wall_abs_floor)
    host_a, host_b = run_a.get("host"), run_b.get("host")
    pd.wall_gated = host_a == host_b
    if not pd.wall_gated:
        from repro.obs.bench import describe_host_mismatch
        pd.host_note = describe_host_mismatch(host_a or {}, host_b or {})
    la, lb = _point_ledgers(run_a), _point_ledgers(run_b)
    for key in sorted(set(la) - set(lb)):
        pd.notes.append(f"{key}: only in baseline run")
    for key in sorted(set(lb) - set(la)):
        pd.notes.append(f"{key}: only in current run")
    for key in sorted(set(la) & set(lb)):
        pd.n_points += 1
        A, B = la[key], lb[key]
        if A is None and B is None:
            pd.notes.append(
                f"{key}: no ledger in either run "
                "(pre-schema-3 snapshot or batch run); skipped")
            continue
        if A is None or B is None:
            which = "baseline" if A is None else "current"
            pd.notes.append(f"{key}: no ledger in {which} run; skipped")
            continue
        rows_a = {(r["kind"], r["name"]): r for r in A["rows"]}
        rows_b = {(r["kind"], r["name"]): r for r in B["rows"]}
        for rk in sorted(set(rows_a) | set(rows_b)):
            pd.n_rows += 1
            kind, name = rk
            label = name if kind == "residual" else f"{kind}/{name}"
            ra, rb = rows_a.get(rk), rows_b.get(rk)
            if ra is None or rb is None:
                pd.rows.append(PerfRowDelta(
                    point=key, row=label, kind=kind,
                    baseline=None if ra is None else ra["self_s"],
                    current=None if rb is None else rb["self_s"],
                    base_count=None if ra is None else ra["count"],
                    cur_count=None if rb is None else rb["count"],
                    status="changed",
                    note="ledger row appeared/disappeared "
                         "(deterministic structure drift)",
                ))
                continue
            if kind != "residual" and ra["count"] != rb["count"]:
                pd.rows.append(PerfRowDelta(
                    point=key, row=label, kind=kind,
                    baseline=ra["self_s"], current=rb["self_s"],
                    base_count=ra["count"], cur_count=rb["count"],
                    status="changed",
                    note=f"count drifted {ra['count']} → {rb['count']} "
                         "(exact-match gate)",
                ))
                continue
            a, b = float(ra["self_s"]), float(rb["self_s"])
            if not pd.wall_gated:
                continue  # self-time incomparable across hosts
            if b > a * (1.0 + wall_tol) and b - a > wall_abs_floor:
                status, note = "regressed", (
                    f"self time over +{wall_tol:.0%} threshold")
            elif b < a * (1.0 - wall_tol) and a - b > wall_abs_floor:
                status, note = "improved", ""
            else:
                continue  # quiet row
            pd.rows.append(PerfRowDelta(
                point=key, row=label, kind=kind, baseline=a, current=b,
                base_count=ra["count"], cur_count=rb["count"],
                status=status, note=note,
            ))
    pd.rows.sort(key=lambda r: (-abs(r.delta), r.point, r.row))
    return pd
