"""repro.obs — structured tracing, metrics, and profiling hooks.

Usage at an instrumentation site::

    from repro import obs

    with obs.span("decomp.greedy", cat="decomp", program=prog.name) as sp:
        ...
        sp.add("nests_included", 3)
    obs.event("decomp.ladder", cat="decomp", nest="n0", rung="strict")
    obs.inc("addropt.invariant")

Recording is off by default (set ``REPRO_OBS=1`` or call
:func:`enable`); when off, every hook is a strict no-op — ``span()``
and ``counter()`` return shared singleton no-op objects and nothing is
allocated or stored.  Export collected data with
:func:`repro.obs.export.to_chrome_trace` (``chrome://tracing`` /
Perfetto), :func:`repro.obs.export.to_json`, or
:func:`repro.obs.export.summary`.
"""

from repro.obs.core import (
    ENV_FLAG,
    NOOP_SPAN,
    Collector,
    Event,
    Span,
    collector,
    counter,
    current_span_id,
    disable,
    enable,
    enabled,
    event,
    gauge,
    histogram,
    inc,
    reset,
    span,
)
from repro.obs.provenance import (
    ArtifactEnvelope,
    DecisionRecord,
    ProvenanceLog,
)
from repro.obs.metrics import (
    NOOP_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.export import (
    collector_state,
    lane_trace_events,
    summary,
    to_chrome_trace,
    to_json,
    write_chrome_trace,
    write_json,
)
from repro.obs.hotspot import (
    HotspotProfiler,
    HotspotReport,
    profile,
)

__all__ = [
    "ENV_FLAG",
    "NOOP_SPAN",
    "NOOP_METRIC",
    "Collector",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "ArtifactEnvelope",
    "DecisionRecord",
    "ProvenanceLog",
    "collector",
    "counter",
    "current_span_id",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "inc",
    "reset",
    "span",
    "collector_state",
    "lane_trace_events",
    "summary",
    "to_chrome_trace",
    "to_json",
    "write_chrome_trace",
    "write_json",
    "HotspotProfiler",
    "HotspotReport",
    "profile",
]
