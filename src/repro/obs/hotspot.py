"""Deterministic, low-overhead sampling profiler for the repro hot path.

The trace-driven simulator is itself the dominant cost of every bench
point, and ROADMAP item 1 (vectorize it) needs to know *exactly* which
functions carry that cost before touching them.  This module provides
the measurement: a **tick-counted** statistical sampler built on
``sys.setprofile``.

Design:

* The hook body's fast path is two integer operations (tick increment +
  modulo test).  Every ``interval``-th profile event — call, return, or
  C-call boundary — takes a *sample*: it reads ``perf_counter`` once,
  attributes the elapsed time since the previous sample to the current
  Python stack, and returns.  Which events sample is therefore a pure
  function of the event stream, not of wall-clock timers or signals —
  run the same workload twice and the samples land on the same events
  (the recorded *durations* are still wall time).
* Attribution is by function, keyed ``<repro-relative file>:<qualname>``
  (e.g. ``machine/trace.py:phase_trace``): **self** time goes to the
  innermost frame inside the ``repro`` package, **cumulative** time to
  every distinct repro function on the stack.  Samples with no repro
  frame at all fall into the :data:`EXTERNAL` bucket, so the report's
  total always accounts for the whole profiled wall time.  Long
  opaque C calls (numpy kernels) emit no events while running; their
  time is attributed at the next sampled event, which — at the default
  interval — still sits in the function that issued them.
* With ``collect_stacks=True`` each sample additionally records the
  full repro stack in collapsed/folded form (``outer;inner`` keys,
  seconds accumulated per distinct stack) —
  :meth:`HotspotReport.collapsed` emits the classic folded lines that
  :func:`repro.obs.flame.flamegraph_svg` renders.  The default is off:
  the self/cum attribution above stays byte-identical either way, and
  the extra per-sample join is only paid when a flamegraph was asked
  for.
* Per-function self/cumulative distributions are held in
  :class:`repro.obs.metrics.Histogram` instances (count/sum/min/max +
  deterministic p50/p95), and :meth:`HotspotReport.to_obs` copies them
  into the active obs collector as ``hotspot.self_s.<key>`` /
  ``hotspot.cum_s.<key>`` histograms.

The disabled path is strict: while no profiler is started, this module
installs nothing — ``sys.getprofile()`` stays untouched and no repro
code pays a single extra instruction (the overhead guard in
``tests/test_hotspot.py`` asserts this the same way ``tests/test_obs.py``
guards the obs hooks).
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram

__all__ = [
    "DEFAULT_INTERVAL",
    "EXTERNAL",
    "FunctionStat",
    "HotspotProfiler",
    "HotspotReport",
    "active",
    "profile",
]

# Events between samples.  Small enough that attribution granularity is
# a handful of Python calls; prime so the sampling phase cannot lock
# step with loops whose bodies emit a power-of-two number of events.
DEFAULT_INTERVAL = 7

EXTERNAL = "<external>"

# Root of the repro package (".../src/repro"); frames whose code lives
# under it are attributable, everything else is EXTERNAL.
_PKG_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_PKG_PREFIX = os.path.join(_PKG_ROOT, "")


def _func_key(code) -> str:
    """``machine/trace.py:phase_trace`` for repro code, None otherwise."""
    fn = code.co_filename
    if not fn.startswith(_PKG_PREFIX):
        return None
    rel = fn[len(_PKG_PREFIX):]
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{rel}:{name}"


@dataclass
class FunctionStat:
    """Aggregated samples of one function (times in seconds)."""

    key: str  # "<repro-relative file>:<qualname>" or EXTERNAL
    self_s: float
    cum_s: float
    self_samples: int
    cum_samples: int
    self_p50: float
    self_p95: float
    self_max: float

    @property
    def module(self) -> str:
        """The file part of the key (``machine/trace.py``)."""
        return self.key.rsplit(":", 1)[0] if ":" in self.key else self.key

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "module": self.module,
            "self_s": self.self_s,
            "cum_s": self.cum_s,
            "self_samples": self.self_samples,
            "cum_samples": self.cum_samples,
            "self_p50": self.self_p50,
            "self_p95": self.self_p95,
            "self_max": self.self_max,
        }


@dataclass
class HotspotReport:
    """One finished profiling session, ranked by self time.

    ``functions`` is sorted by descending self time with the key as a
    deterministic tie-break, so rendering the report twice (or on two
    runs whose sample attribution agrees) produces identical orderings.
    """

    wall_s: float
    ticks: int
    samples: int
    interval: int
    functions: List[FunctionStat] = field(default_factory=list)
    # Collapsed stacks ({"outer;inner": seconds}); None unless the
    # profiler ran with collect_stacks=True.
    stacks: Optional[Dict[str, float]] = None
    # The raw per-function histograms, kept for to_obs().
    _hists: Dict[str, Tuple[Histogram, Histogram]] = field(
        default_factory=dict, repr=False)

    def top(self, n: int = 10, include_external: bool = True
            ) -> List[FunctionStat]:
        fns = self.functions if include_external else [
            f for f in self.functions if f.key != EXTERNAL
        ]
        return fns[:n]

    def by_module(self) -> Dict[str, float]:
        """Self-time rollup per file, name-sorted."""
        out: Dict[str, float] = {}
        for f in self.functions:
            out[f.module] = out.get(f.module, 0.0) + f.self_s
        return {k: out[k] for k in sorted(out)}

    def collapsed(self) -> List[str]:
        """The sampled stacks as folded lines (``a;b;c 0.000123``,
        seconds, stack-sorted) — flamegraph input.  Empty when the
        profiler ran without ``collect_stacks``."""
        if not self.stacks:
            return []
        return [f"{k} {self.stacks[k]:.6f}" for k in sorted(self.stacks)]

    def as_dict(self, top: Optional[int] = None) -> Dict[str, Any]:
        fns = self.functions if top is None else self.top(top)
        return {
            "wall_s": self.wall_s,
            "ticks": self.ticks,
            "samples": self.samples,
            "interval": self.interval,
            "functions": [f.as_dict() for f in fns],
            "modules": self.by_module(),
        }

    def to_obs(self) -> None:
        """Copy the per-function distributions into the active obs
        collector as ``hotspot.self_s.<key>`` / ``hotspot.cum_s.<key>``
        histograms (no-op while observability is disabled)."""
        from repro import obs

        if not obs.enabled():
            return
        registry = obs.collector().metrics
        for key, (self_h, cum_h) in sorted(self._hists.items()):
            for prefix, src in (("hotspot.self_s.", self_h),
                                ("hotspot.cum_s.", cum_h)):
                if not src.count:
                    continue
                dst = registry.histogram(prefix + key)
                for v in src.samples:
                    dst.observe(v)
                # The decimated sample list may undercount; carry the
                # exact totals over explicitly.
                dst.count = src.count
                dst.total = src.total
                dst.min = src.min
                dst.max = src.max


class HotspotProfiler:
    """Tick-counted sampling profiler; use via ``start()``/``stop()``
    or the :func:`profile` context manager.

    ``clock`` is injectable for deterministic tests (any zero-argument
    callable returning monotonically increasing floats).
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 clock: Callable[[], float] = time.perf_counter,
                 collect_stacks: bool = False):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = int(interval)
        self._clock = clock
        self._hists: Dict[str, Tuple[Histogram, Histogram]] = {}
        # Collapsed-stack accumulator; None keeps the default sample
        # path free of the per-sample key join.
        self._stacks: Optional[Dict[str, float]] = (
            {} if collect_stacks else None)
        self._ticks = 0
        self._samples = 0
        self._t_start = 0.0
        self._t_stop = 0.0
        self._last = 0.0
        self._running = False
        self._prev_hook = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HotspotProfiler":
        if self._running:
            raise RuntimeError("profiler already running")
        global _active
        self._prev_hook = sys.getprofile()
        self._running = True
        _active = self
        self._t_start = self._last = self._clock()
        sys.setprofile(self._hook)
        return self

    def stop(self) -> HotspotReport:
        if not self._running:
            raise RuntimeError("profiler not running")
        global _active
        sys.setprofile(self._prev_hook)
        self._t_stop = self._clock()
        self._running = False
        self._prev_hook = None
        if _active is self:
            _active = None
        return self.report()

    def __enter__(self) -> "HotspotProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._running:
            self.stop()
        return False

    # -- the hook ------------------------------------------------------------

    def _hook(self, frame, event, arg) -> None:
        t = self._ticks + 1
        self._ticks = t
        if t % self.interval:
            return
        now = self._clock()
        dt = now - self._last
        self._last = now
        self._samples += 1
        # Attribute: self to the innermost repro frame, cumulative to
        # every distinct repro function on the stack.
        hists = self._hists
        stacks = self._stacks
        path: Optional[List[str]] = [] if stacks is not None else None
        self_key = None
        seen = None
        f = frame
        while f is not None:
            key = _func_key(f.f_code)
            if key is not None:
                if path is not None:
                    path.append(key)  # innermost first; reversed below
                if self_key is None:
                    self_key = key
                    seen = {key}
                elif key not in seen:
                    seen.add(key)
                    entry = hists.get(key)
                    if entry is None:
                        entry = hists[key] = (Histogram(key), Histogram(key))
                    entry[1].observe(dt)
            f = f.f_back
        if stacks is not None:
            skey = ";".join(reversed(path)) if path else EXTERNAL
            stacks[skey] = stacks.get(skey, 0.0) + dt
        if self_key is None:
            self_key = EXTERNAL
        entry = hists.get(self_key)
        if entry is None:
            entry = hists[self_key] = (Histogram(self_key),
                                       Histogram(self_key))
        entry[0].observe(dt)
        entry[1].observe(dt)

    # -- reporting -----------------------------------------------------------

    def report(self) -> HotspotReport:
        """The current (or final) aggregation as a ranked report."""
        end = self._t_stop if not self._running else self._clock()
        stats = []
        for key, (self_h, cum_h) in self._hists.items():
            stats.append(FunctionStat(
                key=key,
                self_s=self_h.total,
                cum_s=cum_h.total,
                self_samples=self_h.count,
                cum_samples=cum_h.count,
                self_p50=self_h.p50 if self_h.count else 0.0,
                self_p95=self_h.p95 if self_h.count else 0.0,
                self_max=self_h.max if self_h.count else 0.0,
            ))
        stats.sort(key=lambda s: (-s.self_s, s.key))
        return HotspotReport(
            wall_s=end - self._t_start,
            ticks=self._ticks,
            samples=self._samples,
            interval=self.interval,
            functions=stats,
            stacks=(dict(self._stacks)
                    if self._stacks is not None else None),
            _hists=self._hists,
        )


# -- module-level convenience ------------------------------------------------

_active: Optional[HotspotProfiler] = None


def active() -> Optional[HotspotProfiler]:
    """The running profiler, or ``None`` — the disabled state, in which
    this module has installed nothing into ``sys.setprofile``."""
    return _active


class _ProfileContext:
    """Context manager handed out by :func:`profile`."""

    def __init__(self, interval: int, collect_stacks: bool = False):
        self.profiler = HotspotProfiler(interval=interval,
                                        collect_stacks=collect_stacks)
        self.report: Optional[HotspotReport] = None

    def __enter__(self) -> "_ProfileContext":
        self.profiler.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.report = self.profiler.stop()
        return False


def profile(interval: int = DEFAULT_INTERVAL,
            collect_stacks: bool = False) -> _ProfileContext:
    """``with hotspot.profile() as p: ...`` — ``p.report`` afterwards."""
    return _ProfileContext(interval, collect_stacks=collect_stacks)
