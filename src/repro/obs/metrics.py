"""Metric instruments: counters, gauges, histograms.

All instruments live in a :class:`MetricsRegistry` owned by the active
collector (:mod:`repro.obs.core`).  When observability is disabled the
module-level accessors hand back the *shared* :data:`NOOP_METRIC`
instead — callers keep a uniform ``.add()/.set()/.observe()`` surface
and pay only an attribute lookup plus a no-op call.
"""

from __future__ import annotations

from typing import Any, Dict


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, value: int = 1) -> "Counter":
        self.value += value
        return self


class Gauge:
    """Last-set value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> "Gauge":
        self.value = value
        return self


# Retained-sample cap per histogram.  Exact percentiles up to the cap;
# past it, samples are decimated deterministically (every other kept,
# stride doubled), so two identical observation streams always retain
# identical samples — no randomized reservoir.
SAMPLE_CAP = 512


class Histogram:
    """Streaming summary (count/sum/min/max/percentiles) of observed
    values.

    A bounded, deterministically decimated sample list backs the
    percentile estimates: every observation is retained until
    :data:`SAMPLE_CAP`, after which every other retained sample is
    dropped and only every ``stride``-th future observation is kept.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples",
                 "_stride")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = []
        self._stride = 1

    def observe(self, value: float) -> "Histogram":
        if self.count % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) > SAMPLE_CAP:
                # Keep observation indices that are multiples of the
                # doubled stride (positions 0, 2, 4, ... of the list).
                del self.samples[1::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile over the retained samples
        (``q`` in [0, 1]); 0.0 on an empty histogram.  Exact while the
        observation count is within :data:`SAMPLE_CAP`."""
        if not self.samples:
            return 0.0
        xs = sorted(self.samples)
        if len(xs) == 1:
            return xs[0]
        pos = q * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)


class _NoopMetric:
    """Shared do-nothing instrument returned while disabled."""

    __slots__ = ()

    def add(self, value: int = 1) -> "_NoopMetric":
        return self

    def set(self, value: float) -> "_NoopMetric":
        return self

    def observe(self, value: float) -> "_NoopMetric":
        return self


NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """Create-on-demand instrument store."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                    "p50": h.p50 if h.count else None,
                    "p95": h.p95 if h.count else None,
                }
                for k, h in sorted(self.histograms.items())
            },
        }
