"""Metric instruments: counters, gauges, histograms.

All instruments live in a :class:`MetricsRegistry` owned by the active
collector (:mod:`repro.obs.core`).  When observability is disabled the
module-level accessors hand back the *shared* :data:`NOOP_METRIC`
instead — callers keep a uniform ``.add()/.set()/.observe()`` surface
and pay only an attribute lookup plus a no-op call.
"""

from __future__ import annotations

from typing import Any, Dict


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, value: int = 1) -> "Counter":
        self.value += value
        return self


class Gauge:
    """Last-set value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> "Gauge":
        self.value = value
        return self


class Histogram:
    """Streaming summary (count/sum/min/max) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> "Histogram":
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NoopMetric:
    """Shared do-nothing instrument returned while disabled."""

    __slots__ = ()

    def add(self, value: int = 1) -> "_NoopMetric":
        return self

    def set(self, value: float) -> "_NoopMetric":
        return self

    def observe(self, value: float) -> "_NoopMetric":
        return self


NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """Create-on-demand instrument store."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                }
                for k, h in sorted(self.histograms.items())
            },
        }
