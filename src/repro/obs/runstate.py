"""Live run state: the write-side monitor and the read-side snapshot.

The journal (:mod:`repro.pipeline.journal`) made a run's history
durable; this module makes it *observable while it runs*.  Two halves,
deliberately decoupled by the journal file itself so they can live in
different processes:

* :class:`RunMonitor` rides inside the grid driver.  The executor
  tells it about dispatches/finishes/waves; a rate-limited
  :meth:`~RunMonitor.tick` appends ``heartbeat`` records to the
  journal (pid, wave, progress counters, in-flight indices, rss) and
  flushes a metrics sample into the run's
  :class:`~repro.obs.timeseries.TimeseriesSink`.  Monitoring is
  best-effort by construction: every emit path swallows and counts its
  own errors, and heartbeats are never fsync'd.

* :func:`load_status` runs in *any other process* (``repro status`` /
  ``watch``).  It replays the journal into a :class:`RunStatus`:
  progress, per-scheme completion matrix, cache-hit rate, an EWMA of
  executed per-point latency and the ETA it implies, and a run-state
  classification::

      finished     the journal carries ``end: complete``
      interrupted  ``end: interrupted``, or no ``end`` and the driver
                   pid is dead (SIGKILL leaves exactly this shape)
      stale        no ``end``, pid unknown or alive, but the journal
                   has not moved for longer than ``stale_after``
      running      anything else — the driver is alive and writing

:func:`build_report` stitches status + journal timeline + time series
into the payload ``repro report`` renders.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import core
from repro.obs.timeseries import load_series, ts_path
from repro.pipeline.journal import (
    JournalState,
    journal_dir,
    read_records,
    resolve_run_id,
)

__all__ = [
    "DEFAULT_STALE_AFTER",
    "EWMA_ALPHA",
    "RunMonitor",
    "RunStatus",
    "build_report",
    "load_status",
    "pid_alive",
    "rss_bytes",
]

# A driver heartbeats every ~2 s by default; 15 s of silence with no
# end record and no dead pid means the writer is wedged, not just slow.
DEFAULT_STALE_AFTER = 15.0

# Smoothing for the per-point latency estimate feeding the ETA.
EWMA_ALPHA = 0.25


def rss_bytes() -> Optional[int]:
    """Resident set size of this process, best effort."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


def pid_alive(pid: Optional[int]) -> Optional[bool]:
    """Is the pid running?  ``None`` when unknowable (no pid)."""
    if not pid:
        return None
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError, ValueError, OverflowError):
        # Exists but is not ours (or the probe itself failed): treat as
        # alive — staleness will catch a wedged writer.
        return True
    return True


# ---------------------------------------------------------------------------
# Write side: rides inside the grid driver.
# ---------------------------------------------------------------------------

class RunMonitor:
    """Emits heartbeats and time-series samples for a running grid.

    The grid executor calls the ``point_*``/``wave_started`` hooks;
    emission is rate-limited to ``interval`` seconds on a monotonic
    clock, so hooks are safe to call as often as the executor likes
    (including once per 0.2 s wait slice while futures are pending).
    """

    def __init__(self, total: int,
                 journal: Optional[Any] = None,
                 sink: Optional[Any] = None,
                 interval: float = 2.0,
                 jobs: int = 1):
        self.total = total
        self.journal = journal
        self.sink = sink
        self.interval = max(float(interval), 0.05)
        self.jobs = max(int(jobs), 1)
        self.wave = 0
        self.dispatched = 0
        self.finished = 0
        self.retried = 0
        self.degraded = 0
        self.errors = 0
        self.store_hits = 0
        self.ticks = 0
        self._in_flight: set = set()
        self._last_tick = 0.0  # monotonic; 0 → first tick fires

    # -- executor hooks ----------------------------------------------------

    def wave_started(self, wave: int, pending: int) -> None:
        self.wave = wave
        self.tick(force=True)

    def point_dispatched(self, index: int) -> None:
        self.dispatched += 1
        self._in_flight.add(index)
        self.tick()

    def point_finished(self, index: int, result: Any) -> None:
        self.finished += 1
        self._in_flight.discard(index)
        if getattr(result, "store_hit", False):
            self.store_hits += 1
        else:
            if not getattr(result, "ok", False):
                self.errors += 1
            if getattr(result, "degraded", False):
                self.degraded += 1
            if getattr(result, "attempts", 1) > 1:
                self.retried += 1
        self.tick()

    # -- emission ----------------------------------------------------------

    def progress(self) -> Dict[str, Any]:
        """The snapshot every heartbeat and time-series sample carries."""
        return {
            "pid": os.getpid(),
            "wave": self.wave,
            "jobs": self.jobs,
            "total": self.total,
            "dispatched": self.dispatched,
            "finished": self.finished,
            "retried": self.retried,
            "degraded": self.degraded,
            "errors": self.errors,
            "store_hits": self.store_hits,
            "in_flight": sorted(self._in_flight),
            "rss": rss_bytes(),
        }

    def tick(self, force: bool = False) -> bool:
        """Emit one heartbeat + sample if ``interval`` has elapsed."""
        now = time.monotonic()
        if (not force and self._last_tick
                and now - self._last_tick < self.interval):
            return False
        self._last_tick = now
        self.ticks += 1
        snap = self.progress()
        try:
            if self.journal is not None:
                self.journal.heartbeat(**snap)
            if self.sink is not None:
                self.sink.sample(snap)
        except Exception:
            core.inc("monitor.errors")
        core.inc("monitor.ticks")
        return True

    def close(self) -> None:
        """Final forced tick so the journal's last heartbeat reflects
        the terminal counts, then release the sink."""
        self.tick(force=True)
        if self.sink is not None:
            try:
                self.sink.close()
            except Exception:
                core.inc("monitor.errors")


# ---------------------------------------------------------------------------
# Read side: any process, against the journal alone.
# ---------------------------------------------------------------------------

@dataclass
class RunStatus:
    """Cross-process snapshot of one journaled run."""

    run_id: str
    path: str
    state: str                      # running | finished | interrupted | stale
    total: int
    finished: int
    ok: int
    errors: int
    degraded: int
    retried: int
    store_hits: int
    executed: int                   # finished minus store hits
    in_flight: List[Dict[str, Any]] = field(default_factory=list)
    waves: int = 0
    resumes: int = 0
    heartbeats: int = 0
    pid: Optional[int] = None
    pid_alive: Optional[bool] = None
    heartbeat_age: Optional[float] = None
    rss: Optional[int] = None
    jobs: int = 1
    wave: int = 0
    ewma_latency: Optional[float] = None
    eta: Optional[float] = None
    cache_hit_rate: Optional[float] = None
    scheme_matrix: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)
    bad_lines: int = 0
    torn_tail: bool = False
    ended: Optional[str] = None

    @property
    def progress(self) -> float:
        return self.finished / self.total if self.total else 1.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "path": self.path,
            "state": self.state,
            "total": self.total,
            "finished": self.finished,
            "progress": round(self.progress, 4),
            "ok": self.ok,
            "errors": self.errors,
            "degraded": self.degraded,
            "retried": self.retried,
            "store_hits": self.store_hits,
            "executed": self.executed,
            "in_flight": list(self.in_flight),
            "waves": self.waves,
            "resumes": self.resumes,
            "heartbeats": self.heartbeats,
            "pid": self.pid,
            "pid_alive": self.pid_alive,
            "heartbeat_age": self.heartbeat_age,
            "rss": self.rss,
            "jobs": self.jobs,
            "wave": self.wave,
            "ewma_latency": self.ewma_latency,
            "eta": self.eta,
            "cache_hit_rate": self.cache_hit_rate,
            "scheme_matrix": self.scheme_matrix,
            "bad_lines": self.bad_lines,
            "torn_tail": self.torn_tail,
            "ended": self.ended,
        }


def _classify(state: JournalState, now: float,
              stale_after: float) -> str:
    if state.ended == "complete":
        return "finished"
    if state.ended == "interrupted":
        return "interrupted"
    alive = pid_alive(state.pid)
    if alive is False:
        # No end record and the driver pid is gone: SIGKILL / OOM /
        # driver.kill all leave exactly this shape.
        return "interrupted"
    hb = state.last_heartbeat
    freshness: Optional[float] = None
    if hb is not None and isinstance(hb.get("t"), (int, float)):
        freshness = float(hb["t"])
    else:
        try:
            freshness = state.path.stat().st_mtime
        except OSError:
            pass
    if freshness is not None and now - freshness > stale_after:
        return "stale"
    return "running"


def status_from_state(state: JournalState, *,
                      now: Optional[float] = None,
                      stale_after: float = DEFAULT_STALE_AFTER
                      ) -> RunStatus:
    """Derive a :class:`RunStatus` from a parsed journal."""
    if now is None:
        now = time.time()

    header = state.header or {}
    total = int(header.get("total") or 0)
    try:
        points = state.points()
    except Exception:
        points = []
    if not total:
        total = len(points)

    # Labels for in-flight indices come from the spec, so a status
    # probe never needs the (possibly dead) driver's memory.
    labels: Dict[int, str] = {i: p.label() for i, p in enumerate(points)}
    in_flight = [{"i": i, "label": labels.get(i, f"point {i}")}
                 for i in state.in_flight]

    ok = errors = degraded = retried = store_hits = 0
    runs_total = hits_total = 0
    ewma: Optional[float] = None
    matrix: Dict[str, Dict[str, List[int]]] = {}
    for p in points:
        cell = matrix.setdefault(p.app, {}).setdefault(p.scheme, [0, 0])
        cell[1] += 1
    for i, d in state.finished.items():
        if not isinstance(d, dict):
            continue
        if d.get("ok"):
            ok += 1
        else:
            errors += 1
        if d.get("degraded"):
            degraded += 1
        if (d.get("attempts") or 1) > 1:
            retried += 1
        if d.get("store_hit"):
            store_hits += 1
        else:
            elapsed = d.get("elapsed")
            if isinstance(elapsed, (int, float)) and elapsed >= 0:
                ewma = (elapsed if ewma is None
                        else EWMA_ALPHA * elapsed + (1 - EWMA_ALPHA) * ewma)
        for v in (d.get("pass_runs") or {}).values():
            runs_total += int(v)
        for v in (d.get("pass_hits") or {}).values():
            hits_total += int(v)
        pd = d.get("point") or {}
        app, scheme = pd.get("app"), pd.get("scheme")
        if app in matrix and scheme in matrix[app]:
            matrix[app][scheme][0] += 1

    finished = len(state.finished)
    hb = state.last_heartbeat or {}
    jobs = max(int(hb.get("jobs") or 1), 1)
    hb_age = None
    if isinstance(hb.get("t"), (int, float)):
        hb_age = max(round(now - float(hb["t"]), 3), 0.0)

    remaining = max(total - finished, 0)
    eta = None
    if ewma is not None and remaining:
        eta = round(remaining * ewma / jobs, 3)
    hit_rate = None
    if runs_total + hits_total:
        hit_rate = hits_total / (runs_total + hits_total)

    return RunStatus(
        run_id=state.run_id,
        path=str(state.path),
        state=_classify(state, now, stale_after),
        total=total,
        finished=finished,
        ok=ok,
        errors=errors,
        degraded=degraded,
        retried=retried,
        store_hits=store_hits,
        executed=finished - store_hits,
        in_flight=in_flight,
        waves=state.waves,
        resumes=state.resumes,
        heartbeats=state.heartbeats,
        pid=state.pid,
        pid_alive=pid_alive(state.pid),
        heartbeat_age=hb_age,
        rss=hb.get("rss"),
        jobs=jobs,
        wave=int(hb.get("wave") or state.waves),
        ewma_latency=round(ewma, 4) if ewma is not None else None,
        eta=eta,
        cache_hit_rate=(round(hit_rate, 4)
                        if hit_rate is not None else None),
        scheme_matrix=matrix,
        bad_lines=state.bad_lines,
        torn_tail=state.torn_tail,
        ended=state.ended,
    )


def load_status(store_root: os.PathLike, token: str = "latest", *,
                stale_after: float = DEFAULT_STALE_AFTER) -> RunStatus:
    """Snapshot a run by id (or ``latest``) from its journal alone.

    Raises :class:`~repro.errors.JournalError` when no such run exists
    or its journal is unreadable — callers map that to exit code 2.
    """
    jdir = journal_dir(store_root)
    run_id = resolve_run_id(jdir, token)
    state = JournalState.load(jdir / f"{run_id}.jsonl")
    return status_from_state(state, stale_after=stale_after)


# ---------------------------------------------------------------------------
# Report payload: status + timeline + time series in one dict.
# ---------------------------------------------------------------------------

def build_report(store_root: os.PathLike, token: str = "latest", *,
                 stale_after: float = DEFAULT_STALE_AFTER
                 ) -> Dict[str, Any]:
    """Everything ``repro report`` renders, from journal + series alone.

    The payload is pure data (JSON-serializable) so ``--json`` and
    ``--html`` are two renderings of the same artifact.
    """
    jdir = journal_dir(store_root)
    run_id = resolve_run_id(jdir, token)
    jpath = jdir / f"{run_id}.jsonl"
    state = JournalState.load(jpath)
    status = status_from_state(state, stale_after=stale_after)
    records, _, _ = read_records(jpath)

    # Timeline: every timestamped lifecycle record, relative to the
    # first timestamp seen so the report is origin-independent.
    stamped = [r for r in records
               if isinstance(r.get("t"), (int, float))
               and r.get("type") in ("wave", "start", "done", "heartbeat")]
    t0 = min((float(r["t"]) for r in stamped), default=0.0)
    timeline: List[Dict[str, Any]] = []
    for r in stamped:
        entry: Dict[str, Any] = {"t": round(float(r["t"]) - t0, 3),
                                 "type": r["type"]}
        if r["type"] == "wave":
            entry["wave"] = r.get("wave")
            entry["pending"] = r.get("pending")
        elif r["type"] == "start":
            entry["i"] = r.get("i")
            entry["label"] = r.get("label")
        elif r["type"] == "done":
            entry["i"] = r.get("i")
            entry["ok"] = r.get("ok")
        else:  # heartbeat
            entry["finished"] = r.get("finished")
            entry["rss"] = r.get("rss")
        timeline.append(entry)

    # Per-point rows plus degradation / failure / provenance rollups.
    rows: List[Dict[str, Any]] = []
    degraded: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    decisions: Dict[str, int] = {}
    for i, d in sorted(state.finished.items()):
        if not isinstance(d, dict):
            continue
        pd = d.get("point") or {}
        label = (f"{pd.get('app', '?')}/{pd.get('scheme', '?')}"
                 f"/P{pd.get('nprocs', '?')}")
        rows.append({
            "i": i,
            "label": label,
            "ok": bool(d.get("ok")),
            "elapsed": d.get("elapsed"),
            "total_time": d.get("total_time"),
            "store_hit": bool(d.get("store_hit")),
            "attempts": d.get("attempts") or 1,
            "degraded": bool(d.get("degraded")),
        })
        if d.get("degraded"):
            degraded.append({"i": i, "label": label,
                             "reason": d.get("degrade_reason") or ""})
        if not d.get("ok"):
            failures.append({"i": i, "label": label,
                             "error": d.get("error") or ""})
        for rec in d.get("provenance") or []:
            if isinstance(rec, dict):
                key = f"{rec.get('site', '?')} → {rec.get('chosen', '?')}"
                decisions[key] = decisions.get(key, 0) + 1

    series = load_series(ts_path(jdir, run_id))
    curves = _series_curves(series["samples"])

    return {
        "schema": 1,
        "run_id": run_id,
        "status": status.as_dict(),
        "header": {k: v for k, v in (state.header or {}).items()
                   if k != "spec"},
        "timeline": timeline,
        "points": rows,
        "degraded": degraded,
        "failures": failures,
        "decisions": dict(sorted(decisions.items(),
                                 key=lambda kv: (-kv[1], kv[0]))),
        "series": {
            "samples": len(series["samples"]),
            "bad_lines": series["bad_lines"],
            "torn_tail": series["torn_tail"],
            "curves": curves,
        },
    }


def _series_curves(samples: List[Dict[str, Any]]
                   ) -> Dict[str, List[List[float]]]:
    """Plottable ``name → [[t, value], ...]`` curves from raw samples."""
    curves: Dict[str, List[List[float]]] = {}
    if not samples:
        return curves
    t0 = None
    for s in samples:
        t = s.get("t")
        if not isinstance(t, (int, float)):
            continue
        if t0 is None:
            t0 = float(t)
        rel = round(float(t) - t0, 3)
        prog = s.get("progress") or {}
        for key in ("finished", "dispatched", "errors", "store_hits"):
            v = prog.get(key)
            if isinstance(v, (int, float)):
                curves.setdefault(key, []).append([rel, float(v)])
        rss = prog.get("rss")
        if isinstance(rss, (int, float)):
            curves.setdefault("rss_mb", []).append(
                [rel, round(float(rss) / 1e6, 2)])
    return curves
