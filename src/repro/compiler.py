"""The integrated compiler driver.

Mirrors the three configurations measured in Section 6:

* :data:`Scheme.BASE` — the traditional per-nest parallelizer
  (unimodular restructuring, outermost parallel loop, block scheduling,
  barrier after every parallel loop, FORTRAN layouts);
* :data:`Scheme.COMP_DECOMP` — Section 3's global computation/data
  decomposition (synchronization optimized away where locality is
  proven; pipelining where parallelism needs it), original layouts;
* :data:`Scheme.COMP_DECOMP_DATA` — additionally restructures every
  distributed array with Section 4's strip-mine + permute algorithm so
  each processor's data are contiguous.

``compile_program`` produces the SPMD plan the machine model replays;
``emit_c_program`` (re-exported) renders it as C-like source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro import obs
from repro.analysis.unimodular import expose_outer_parallelism
from repro.codegen.emit_c import emit_c_program
from repro.codegen.spmd import Scheme, SpmdProgram, generate_spmd
from repro.decomp.greedy import decompose_program
from repro.decomp.model import Decomposition
from repro.ir.program import Program

__all__ = [
    "Scheme",
    "compile_program",
    "compile_all",
    "restructure_program",
    "emit_c_program",
    "CompiledProgram",
]


def restructure_program(prog: Program) -> Program:
    """The Section 3.2 preprocessing step, applied program-wide: each
    nest is unimodularly restructured to expose the largest outermost
    parallel band (and, as a consequence, stride-1 inner loops for
    column-major arrays).  Every compiler configuration — including
    BASE — starts from this form, as in the paper.

    The result is memoized on the program object.
    """
    cached = getattr(prog, "_restructured", None)
    if cached is not None:
        return cached
    nests = []
    with obs.span("compiler.restructure", cat="compiler",
                  program=prog.name):
        for nest in prog.nests:
            with obs.span("unimodular.nest", cat="compiler",
                          nest=nest.name) as sp:
                res = expose_outer_parallelism(nest, prog.params)
                sp.set(
                    transformed=res.nest is not nest,
                    outer_parallel=res.outer_parallel_count,
                )
                nests.append(res.nest)
    out = Program(
        name=prog.name,
        arrays=dict(prog.arrays),
        nests=nests,
        params=dict(prog.params),
        time_steps=prog.time_steps,
    )
    try:
        prog._restructured = out  # type: ignore[attr-defined]
        out._restructured = out  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover
        pass
    return out


def compile_program(
    prog: Program,
    scheme: Scheme,
    nprocs: int,
    decomp: Optional[Decomposition] = None,
    max_dims: int = 2,
) -> SpmdProgram:
    """Compile one program under one configuration.

    A precomputed decomposition may be supplied (e.g. from HPF
    directives via :mod:`repro.decomp.hpf`); otherwise the greedy
    algorithm runs.
    """
    prog.validate()
    with obs.span("compiler.compile", cat="compiler", program=prog.name,
                  scheme=scheme.value, nprocs=nprocs):
        rprog = restructure_program(prog)
        if scheme is Scheme.BASE:
            return generate_spmd(rprog, scheme, nprocs)
        if decomp is None:
            decomp = decompose_program(rprog, nprocs, max_dims=max_dims)
        return generate_spmd(rprog, scheme, nprocs, decomp=decomp)


@dataclass
class CompiledProgram:
    """All three configurations of one program, for the experiment
    harness."""

    base: SpmdProgram
    comp_decomp: SpmdProgram
    comp_decomp_data: SpmdProgram
    decomposition: Decomposition

    def by_scheme(self, scheme: Scheme) -> SpmdProgram:
        return {
            Scheme.BASE: self.base,
            Scheme.COMP_DECOMP: self.comp_decomp,
            Scheme.COMP_DECOMP_DATA: self.comp_decomp_data,
        }[scheme]


def compile_all(
    prog: Program, nprocs: int, max_dims: int = 2
) -> CompiledProgram:
    """Compile a program under all three Section-6 configurations."""
    prog.validate()
    with obs.span("compiler.compile_all", cat="compiler",
                  program=prog.name, nprocs=nprocs):
        rprog = restructure_program(prog)
        decomp = decompose_program(rprog, nprocs, max_dims=max_dims)
        return CompiledProgram(
            base=generate_spmd(rprog, Scheme.BASE, nprocs),
            comp_decomp=generate_spmd(
                rprog, Scheme.COMP_DECOMP, nprocs, decomp=decomp
            ),
            comp_decomp_data=generate_spmd(
                rprog, Scheme.COMP_DECOMP_DATA, nprocs, decomp=decomp
            ),
            decomposition=decomp,
        )
