"""The integrated compiler driver.

Mirrors the three configurations measured in Section 6:

* :data:`Scheme.BASE` — the traditional per-nest parallelizer
  (unimodular restructuring, outermost parallel loop, block scheduling,
  barrier after every parallel loop, FORTRAN layouts);
* :data:`Scheme.COMP_DECOMP` — Section 3's global computation/data
  decomposition (synchronization optimized away where locality is
  proven; pipelining where parallelism needs it), original layouts;
* :data:`Scheme.COMP_DECOMP_DATA` — additionally restructures every
  distributed array with Section 4's strip-mine + permute algorithm so
  each processor's data are contiguous.

Since PR 2 the actual staging lives in :mod:`repro.pipeline` — typed
passes (restructure → decompose → layout → spmd-codegen) run by a
:class:`~repro.pipeline.session.CompileSession` over a
content-addressed artifact cache.  The functions here are thin,
signature-compatible wrappers over the process-wide default session;
construct your own session for isolation or a disk-backed cache.

``compile_program`` produces the SPMD plan the machine model replays;
``emit_c_program`` (re-exported) renders it as C-like source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.codegen.emit_c import emit_c_program
from repro.codegen.spmd import Scheme, SpmdProgram
from repro.decomp.model import Decomposition
from repro.ir.program import Program
from repro.pipeline.session import get_session

__all__ = [
    "Scheme",
    "compile_program",
    "compile_all",
    "restructure_program",
    "emit_c_program",
    "CompiledProgram",
]


def restructure_program(prog: Program) -> Program:
    """The Section 3.2 preprocessing step, applied program-wide: each
    nest is unimodularly restructured to expose the largest outermost
    parallel band (and, as a consequence, stride-1 inner loops for
    column-major arrays).  Every compiler configuration — including
    BASE — starts from this form, as in the paper.

    Memoized by program *content* in the default session's artifact
    cache (the result of restructuring a program twice — or
    restructuring an already-restructured program — is the same
    object); the input program is never mutated.
    """
    return get_session().restructure(prog)


def compile_program(
    prog: Program,
    scheme: Scheme,
    nprocs: int,
    decomp: Optional[Decomposition] = None,
    max_dims: int = 2,
) -> SpmdProgram:
    """Compile one program under one configuration.

    A precomputed decomposition may be supplied (e.g. from HPF
    directives via :mod:`repro.decomp.hpf`); otherwise the greedy
    algorithm runs (or its cached artifact is reused).
    """
    return get_session().compile(
        prog, scheme, nprocs, decomp=decomp, max_dims=max_dims
    )


@dataclass
class CompiledProgram:
    """All three configurations of one program, for the experiment
    harness."""

    base: SpmdProgram
    comp_decomp: SpmdProgram
    comp_decomp_data: SpmdProgram
    decomposition: Decomposition

    def by_scheme(self, scheme: Scheme) -> SpmdProgram:
        return {
            Scheme.BASE: self.base,
            Scheme.COMP_DECOMP: self.comp_decomp,
            Scheme.COMP_DECOMP_DATA: self.comp_decomp_data,
        }[scheme]


def compile_all(
    prog: Program, nprocs: int, max_dims: int = 2
) -> CompiledProgram:
    """Compile a program under all three Section-6 configurations."""
    return get_session().compile_all(prog, nprocs, max_dims=max_dims)
