"""Parallel-loop identification from dependence information.

A loop level is a *doall* (fully parallel at its position) when no
dependence is carried at that level: iterations of the loop, for fixed
outer indices, are then independent.  This is the criterion the paper's
BASE compiler uses after its per-nest unimodular restructuring, and the
starting point of the decomposition analysis.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dependence import Dependence, analyze_nest
from repro.ir.loops import LoopNest


def parallel_levels(
    nest: LoopNest, deps: Optional[Sequence[Dependence]] = None,
    params: Optional[Mapping[str, int]] = None,
) -> Tuple[int, ...]:
    """Loop levels (0-based) that carry no dependence."""
    if deps is None:
        if params is None:
            raise ValueError("need either deps or params")
        deps = analyze_nest(nest, params)
    carried = {d.level for d in deps if d.level >= 0}
    return tuple(k for k in range(nest.depth) if k not in carried)


def outermost_parallel_level(
    nest: LoopNest, deps: Optional[Sequence[Dependence]] = None,
    params: Optional[Mapping[str, int]] = None,
) -> Optional[int]:
    """The outermost doall level, or None if every level carries a
    dependence."""
    levels = parallel_levels(nest, deps, params)
    return levels[0] if levels else None


def carried_distance_vectors(
    deps: Sequence[Dependence],
) -> List[Tuple[int, ...]]:
    """Constant distance vectors of all carried dependences (those with a
    fully-known distance)."""
    out = []
    for d in deps:
        if d.level >= 0 and d.is_constant():
            vec = tuple(int(v) for v in d.distance)
            if any(vec):
                out.append(vec)
    return out


def variable_components(deps: Sequence[Dependence], depth: int) -> Tuple[int, ...]:
    """Levels at which some carried dependence has a non-constant
    distance component (used to build conservative obstruction sets)."""
    var_levels = set()
    for d in deps:
        if d.level < 0:
            continue
        for j, comp in enumerate(d.distance):
            if comp is None:
                var_levels.add(j)
    return tuple(sorted(v for v in var_levels if v < depth))
