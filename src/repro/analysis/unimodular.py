"""Unimodular restructuring to expose outermost parallel loops.

Following Wolf & Lam (and the paper's Section 3.2 "first step"), a
unimodular transform ``T`` makes the leading loops of a nest parallel
when its leading rows annihilate every dependence distance vector.
We therefore:

1. collect an *obstruction set* spanning all realizable dependence
   distances (constant vectors directly; variable components
   conservatively contribute unit vectors),
2. take the integer nullspace of that set — these rows become the
   outermost loops and are doall by construction,
3. complete to a unimodular matrix and reorder/negate the completion
   rows until every dependence is carried with a positive leading
   component (legality).

The paper's benchmarks only ever need loop *permutations* out of this
machinery (e.g. vpenta's interchange), so when the resulting matrix is
not a pure permutation — or when triangular bounds would be violated by
reordering — we conservatively keep the original nest.  Imperfect nests
(statements at differing depths) are likewise left in place, matching
the BASE compiler's per-loop behaviour described in Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs import provenance
from repro.analysis.dependence import Dependence, analyze_nest
from repro.analysis.parallelism import parallel_levels
from repro.ir.loops import LoopNest
from repro.util.intlinalg import (
    identity,
    integer_nullspace,
    is_unimodular,
    unimodular_completion,
)


@dataclass
class UnimodularResult:
    """Outcome of the restructuring pass."""

    nest: LoopNest
    transform: List[List[int]]  # rows = new loops in terms of old indices
    parallel: Tuple[int, ...]  # parallel levels of the (new) nest
    deps: List[Dependence]  # dependences of the (new) nest
    # Provenance payload describing the keep/permute decision; stored on
    # the (memoized) result so the record is re-emitted identically on
    # every lookup, not only on the first derivation.
    decision: Optional[dict] = None

    @property
    def outer_parallel_count(self) -> int:
        """Number of leading parallel levels."""
        n = 0
        for k in range(len(self.transform)):
            if k in self.parallel:
                n += 1
            else:
                break
        return n


def _obstruction_rows(
    deps: Sequence[Dependence], depth: int
) -> List[List[int]]:
    """Rows spanning (a superset of) all realizable carried distances."""
    rows: List[List[int]] = []
    for d in deps:
        if d.level < 0:
            continue
        base = [0] * depth
        had_var = False
        for j, comp in enumerate(d.distance):
            if j >= depth:
                break
            if comp is None:
                had_var = True
                unit = [0] * depth
                unit[j] = 1
                rows.append(unit)
            else:
                base[j] = comp
        if any(base):
            rows.append(base)
        elif not had_var:
            # zero distance at a carried level cannot happen, but guard
            continue
    return rows


def _interval_dot(
    row: Sequence[int], dmin: Sequence[Optional[int]],
    dmax: Sequence[Optional[int]],
) -> Tuple[Optional[int], Optional[int]]:
    """Interval of row . d given per-component bounds (None = unbounded)."""
    lo: Optional[int] = 0
    hi: Optional[int] = 0
    for c, l, h in zip(row, dmin, dmax):
        if c == 0:
            continue
        if c > 0:
            tlo = None if l is None else c * l
            thi = None if h is None else c * h
        else:
            tlo = None if h is None else c * h
            thi = None if l is None else c * l
        lo = None if (lo is None or tlo is None) else lo + tlo
        hi = None if (hi is None or thi is None) else hi + thi
    return lo, hi


def _legal_tail_order(
    tail: List[List[int]], deps: Sequence[Dependence], depth: int
) -> Optional[List[List[int]]]:
    """Search orderings/orientations of the completion rows so that every
    carried dependence has a lexicographically positive image."""
    carried_deps = [d for d in deps if d.level >= 0]
    if not carried_deps:
        return tail

    def check(order: Sequence[Tuple[List[int], int]]) -> bool:
        remaining = list(carried_deps)
        for row, sign in order:
            srow = [sign * c for c in row]
            next_remaining = []
            for d in remaining:
                dmin = list(d.dmin)[:depth] + [0] * (depth - len(d.dmin))
                dmax = list(d.dmax)[:depth] + [0] * (depth - len(d.dmax))
                lo, hi = _interval_dot(srow, dmin, dmax)
                if lo is None or lo < 0:
                    return False
                if lo >= 1:
                    continue  # definitely carried here
                next_remaining.append(d)
            remaining = next_remaining
        # Dependences never definitely carried must be provably zero under
        # every tail row (loop-independent after transform) — conservative:
        for d in remaining:
            for row, sign in order:
                srow = [sign * c for c in row]
                dmin = list(d.dmin)[:depth] + [0] * (depth - len(d.dmin))
                dmax = list(d.dmax)[:depth] + [0] * (depth - len(d.dmax))
                lo, hi = _interval_dot(srow, dmin, dmax)
                if not (lo == 0 and hi == 0):
                    return False
        return True

    m = len(tail)
    for perm in permutations(range(m)):
        for signs in range(1 << m):
            order = [
                (tail[perm[k]], 1 if not (signs >> k) & 1 else -1)
                for k in range(m)
            ]
            if check(order):
                return [[s * c for c in row] for row, s in order]
    return None


def _is_permutation(mat: Sequence[Sequence[int]]) -> Optional[List[int]]:
    """If ``mat`` is a permutation matrix, return the permutation
    (new level -> old level); else None."""
    n = len(mat)
    perm = []
    seen = set()
    for row in mat:
        ones = [j for j, c in enumerate(row) if c == 1]
        if len(ones) != 1 or any(c not in (0, 1) for c in row):
            return None
        j = ones[0]
        if j in seen:
            return None
        seen.add(j)
        perm.append(j)
    return perm if len(perm) == n else None


def _permute_nest(nest: LoopNest, perm: Sequence[int]) -> Optional[LoopNest]:
    """Reorder the nest's loops by ``perm`` (new -> old).  Returns None
    when a loop bound would reference a variable that is no longer
    outside it."""
    new_loops = [nest.loops[p] for p in perm]
    outer: set = set()
    for loop in new_loops:
        for e in (loop.lower, loop.upper):
            for v in e.variables:
                if v in {l.var for l in nest.loops} and v not in outer:
                    return None
        outer.add(loop.var)
    return LoopNest(
        name=nest.name,
        loops=new_loops,
        body=list(nest.body),
        frequency=nest.frequency,
    )


def _order_band_for_locality(
    head: List[List[int]], nest: LoopNest
) -> List[List[int]]:
    """Order the parallel band so loops with more loop-invariant
    references sit innermost (adjacent to the reuse they enable).

    This is a light stand-in for the uniprocessor locality pass the
    paper assumes follows ([34]): e.g. vpenta's RHS sweeps reuse the
    2-D coefficient column across the three planes, so the plane loop
    belongs inside the column loop.  Only pure unit-vector bands are
    reordered; the ordering is deterministic, which also makes the
    whole restructuring idempotent.
    """
    units = []
    for row in head:
        nz = [k for k, c in enumerate(row) if c != 0]
        if len(nz) != 1 or abs(row[nz[0]]) != 1:
            return head  # non-permutation band: leave as computed
        units.append(nz[0])

    def invariance(level: int) -> int:
        var = nest.loops[level].var
        score = 0
        for st in nest.body:
            for ref in st.all_refs():
                if all(e.coeff(var) == 0 for e in ref.index_exprs):
                    score += 1
        return score

    order = sorted(range(len(head)), key=lambda i: (invariance(units[i]),
                                                    units[i]))
    return [[abs(c) for c in head[p]] for p in order]


def expose_outer_parallelism(
    nest: LoopNest, params: Mapping[str, int]
) -> UnimodularResult:
    """Restructure ``nest`` to move its parallel loops outermost.

    Falls back to the original nest (identity transform) whenever the
    transform would not be a legal loop permutation.  Memoized on the
    nest object (nests are immutable once built).
    """
    memo_key = tuple(sorted(params.items()))
    memo = getattr(nest, "_unimodular_cache", None)
    if memo is None:
        memo = {}
        try:
            nest._unimodular_cache = memo  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover
            pass
    if memo_key in memo:
        result = memo[memo_key]
    else:
        result = _expose_impl(nest, params)
        memo[memo_key] = result
    if result.decision:
        d = result.decision
        provenance.record(
            d["site"], stage=d["stage"], subject=d["subject"],
            chosen=d["chosen"], alternatives=d["alternatives"],
            reason=d["reason"], **d["inputs"],
        )
    return result


def _expose_impl(
    nest: LoopNest, params: Mapping[str, int]
) -> UnimodularResult:
    deps = analyze_nest(nest, params)
    depth = nest.depth
    ident = identity(depth)

    def fallback(reason: str) -> UnimodularResult:
        obs.event("unimodular.keep", cat="compiler", nest=nest.name,
                  reason=reason)
        return UnimodularResult(
            nest=nest,
            transform=ident,
            parallel=parallel_levels(nest, deps),
            deps=deps,
            decision={
                "site": "unimodular.restructure", "stage": "unimodular",
                "subject": nest.name, "chosen": "keep",
                "alternatives": ["keep", "permute"], "reason": reason,
                "inputs": {"depth": depth, "n_deps": len(deps)},
            },
        )

    # Imperfect nests: keep in place (BASE analyzes one loop at a time).
    if any(
        (st.depth is not None and st.depth != depth) for st in nest.body
    ):
        return fallback("imperfect nest")

    obstructions = _obstruction_rows(deps, depth)
    if not obstructions:
        return fallback("already parallel")
    head = integer_nullspace(obstructions)
    if not head:
        return fallback("no communication-free direction")
    head = _order_band_for_locality(head, nest)
    try:
        full = unimodular_completion(head, depth)
    except (ValueError, AssertionError):
        return fallback("no unimodular completion")
    tail = full[len(head):]
    tail = _legal_tail_order(tail, deps, depth)
    if tail is None:
        return fallback("no legal tail order")
    transform = head + tail
    if not is_unimodular(transform):
        return fallback("transform not unimodular")
    perm = _is_permutation(transform)
    if perm is None:
        return fallback("transform not a permutation")
    if perm == list(range(depth)):
        return fallback("identity permutation")
    new_nest = _permute_nest(nest, perm)
    if new_nest is None:
        return fallback("permutation breaks triangular bounds")
    new_deps = analyze_nest(new_nest, params)
    obs.event("unimodular.permute", cat="compiler", nest=nest.name,
              perm=list(perm), parallel_band=len(head))
    obs.inc("unimodular.permuted")
    return UnimodularResult(
        nest=new_nest,
        transform=transform,
        parallel=parallel_levels(new_nest, new_deps),
        deps=new_deps,
        decision={
            "site": "unimodular.restructure", "stage": "unimodular",
            "subject": nest.name, "chosen": f"permute{list(perm)}",
            "alternatives": ["keep", f"permute{list(perm)}"],
            "reason": "legal outermost-parallel permutation",
            "inputs": {
                "depth": depth, "n_deps": len(deps),
                "parallel_band": len(head), "transform": transform,
            },
        },
    )
