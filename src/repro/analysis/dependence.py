"""Exact data-dependence analysis for affine loop nests.

For every pair of references to the same array (at least one a write)
the tester builds the system

* subscript equations  ``F1 @ i + f1 = F2 @ i' + f2``
* loop bounds for both iteration vectors (triangular bounds supported)
* per-level ordering constraints (``i'_j = i_j`` for j < k, ``i'_k > i_k``)

and decides feasibility exactly (GCD pretest on each subscript equation,
then Fourier–Motzkin over the rationals).  For each feasible carried
level it reports the per-component range of the dependence distance
``d = i' - i``, so consumers get a constant distance vector whenever one
exists and a conservative direction vector otherwise.

This is the information both the BASE parallelizer (Section 6.1) and the
decomposition phase (Section 3) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.fourier_motzkin import LinearSystem
from repro.ir.expr import AffineExpr
from repro.ir.loops import LoopNest, Statement

LOOP_INDEPENDENT = -1


@dataclass(frozen=True)
class Dependence:
    """One dependence between two statement instances of a nest.

    ``level`` is the 0-based loop level carrying the dependence, or
    ``LOOP_INDEPENDENT`` (-1).  ``dmin``/``dmax`` bound each component of
    the distance vector over the common loops (``None`` = unbounded in
    that direction).
    """

    array: str
    src_stmt: int
    dst_stmt: int
    kind: str  # 'flow' | 'anti' | 'output'
    level: int
    dmin: Tuple[Optional[int], ...]
    dmax: Tuple[Optional[int], ...]

    @property
    def distance(self) -> Tuple[Optional[int], ...]:
        """Per-component distance: the value where it is constant, else None."""
        return tuple(
            lo if (lo is not None and lo == hi) else None
            for lo, hi in zip(self.dmin, self.dmax)
        )

    def is_constant(self) -> bool:
        """True when the full distance vector is a known constant."""
        return all(v is not None for v in self.distance)

    def __repr__(self) -> str:
        def fmt(lo, hi):
            if lo is not None and lo == hi:
                return str(lo)
            l = "-inf" if lo is None else str(lo)
            h = "+inf" if hi is None else str(hi)
            return f"[{l},{h}]"

        comps = ",".join(fmt(lo, hi) for lo, hi in zip(self.dmin, self.dmax))
        lvl = "indep" if self.level == LOOP_INDEPENDENT else f"L{self.level}"
        return (
            f"Dep({self.kind} {self.array} s{self.src_stmt}->s{self.dst_stmt} "
            f"{lvl} d=({comps}))"
        )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _expr_linear(
    expr: AffineExpr,
    rename: Mapping[str, str],
    params: Mapping[str, int],
) -> Tuple[Dict[str, int], int]:
    """Split an affine expression into (renamed loop-var coeffs, constant),
    substituting concrete parameter values."""
    coeffs: Dict[str, int] = {}
    const = expr.const
    for v, c in expr.coeffs:
        if v in rename:
            coeffs[rename[v]] = coeffs.get(rename[v], 0) + c
        elif v in params:
            const += c * params[v]
        else:
            raise ValueError(f"unbound variable {v} in {expr!r}")
    return coeffs, const


def _stmt_depth(stmt: Statement, nest: LoopNest) -> int:
    return stmt.depth if stmt.depth is not None else nest.depth


def _gcd_test(coeffs: Dict[str, int], const: int) -> bool:
    """True if ``sum coeffs*v + const == 0`` can have integer solutions."""
    g = 0
    for c in coeffs.values():
        g = gcd(g, abs(c))
    if g == 0:
        return const == 0
    return const % g == 0


def _add_side_bounds(
    sys: LinearSystem,
    nest: LoopNest,
    depth: int,
    prefix: str,
    params: Mapping[str, int],
) -> None:
    """Add loop-bound constraints for one side's iteration vector."""
    rename = {nest.loops[k].var: f"{prefix}{k}" for k in range(depth)}
    for k in range(depth):
        loop = nest.loops[k]
        var = f"{prefix}{k}"
        lc, lk = _expr_linear(loop.lower, rename, params)
        # var >= lower  ->  lower - var <= 0
        lo = dict(lc)
        lo[var] = lo.get(var, 0) - 1
        sys.add_le(lo, lk)
        uc, uk = _expr_linear(loop.upper, rename, params)
        # var <= upper  ->  var - upper <= 0
        hi = {v: -c for v, c in uc.items()}
        hi[var] = hi.get(var, 0) + 1
        sys.add_le(hi, -uk)


# ---------------------------------------------------------------------------
# core test
# ---------------------------------------------------------------------------

def _test_pair(
    nest: LoopNest,
    params: Mapping[str, int],
    s1: int,
    s2: int,
    ref1,
    ref2,
    kind: str,
) -> List[Dependence]:
    """All dependences from (stmt s1, ref1) to (stmt s2, ref2)."""
    depth1 = _stmt_depth(nest.body[s1], nest)
    depth2 = _stmt_depth(nest.body[s2], nest)
    ncommon = min(depth1, depth2)

    rename1 = {nest.loops[k].var: f"s{k}" for k in range(depth1)}
    rename2 = {nest.loops[k].var: f"t{k}" for k in range(depth2)}

    # Subscript equations + GCD pretest.
    equations: List[Tuple[Dict[str, int], int]] = []
    for e1, e2 in zip(ref1.index_exprs, ref2.index_exprs):
        c1, k1 = _expr_linear(e1, rename1, params)
        c2, k2 = _expr_linear(e2, rename2, params)
        coeffs = dict(c1)
        for v, c in c2.items():
            coeffs[v] = coeffs.get(v, 0) - c
        const = k1 - k2
        if not _gcd_test(coeffs, const):
            return []
        equations.append((coeffs, const))

    base = LinearSystem()
    _add_side_bounds(base, nest, depth1, "s", params)
    _add_side_bounds(base, nest, depth2, "t", params)
    for coeffs, const in equations:
        base.add_eq(coeffs, const)

    out: List[Dependence] = []
    levels: List[int] = list(range(ncommon))
    # Loop-independent dependences only flow forward in the body.
    if s1 < s2:
        levels.append(LOOP_INDEPENDENT)

    for level in levels:
        sys = base.copy()
        if level == LOOP_INDEPENDENT:
            for j in range(ncommon):
                sys.add_eq({f"t{j}": 1, f"s{j}": -1}, 0)
        else:
            for j in range(level):
                sys.add_eq({f"t{j}": 1, f"s{j}": -1}, 0)
            # carried: t_level - s_level >= 1
            sys.add_ge({f"t{level}": 1, f"s{level}": -1}, -1)
        if not sys.feasible():
            continue
        dmin: List[Optional[int]] = []
        dmax: List[Optional[int]] = []
        for j in range(ncommon):
            if level == LOOP_INDEPENDENT or j < level:
                dmin.append(0)
                dmax.append(0)
                continue
            res = sys.objective_bounds({f"t{j}": 1, f"s{j}": -1})
            if res is None:  # cannot happen (feasible checked) but be safe
                dmin.append(None)
                dmax.append(None)
                continue
            lo, hi = res
            # Distances are integers; tighten the rational bounds.
            import math

            dmin.append(None if lo is None else math.ceil(lo))
            dmax.append(None if hi is None else math.floor(hi))
        out.append(
            Dependence(
                array=ref1.array.name,
                src_stmt=s1,
                dst_stmt=s2,
                kind=kind,
                level=level,
                dmin=tuple(dmin),
                dmax=tuple(dmax),
            )
        )
    return out


def analyze_nest(
    nest: LoopNest, params: Mapping[str, int]
) -> List[Dependence]:
    """All data dependences within one loop nest.

    Considers every ordered pair of references to the same array where at
    least one side writes.  Both (r1 -> r2) and (r2 -> r1) orderings are
    covered because the statement pairs are enumerated in both orders.

    Results are memoized on the nest object (nests are not mutated after
    construction), since the driver re-analyzes the same nests for every
    processor count in a sweep.
    """
    key = tuple(sorted(params.items()))
    cache = getattr(nest, "_deps_cache", None)
    if cache is not None and key in cache:
        return cache[key]
    deps: List[Dependence] = []
    nstmt = len(nest.body)
    for s1 in range(nstmt):
        st1 = nest.body[s1]
        refs1 = [(st1.write, True)] + [(r, False) for r in st1.reads]
        for s2 in range(nstmt):
            st2 = nest.body[s2]
            refs2 = [(st2.write, True)] + [(r, False) for r in st2.reads]
            for ref1, w1 in refs1:
                for ref2, w2 in refs2:
                    if not (w1 or w2):
                        continue
                    if ref1.array.name != ref2.array.name:
                        continue
                    if s1 == s2 and ref1 is ref2 and w1 and w2:
                        # A write depends on itself only across iterations;
                        # the carried-level tests below cover that, but the
                        # "same instance" case is vacuous.
                        pass
                    kind = (
                        "flow" if (w1 and not w2)
                        else "anti" if (not w1 and w2)
                        else "output"
                    )
                    deps.extend(
                        _test_pair(nest, params, s1, s2, ref1, ref2, kind)
                    )
    result = _dedup(deps)
    if cache is None:
        cache = {}
        try:
            nest._deps_cache = cache  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - exotic nest subclasses
            return result
    cache[key] = result
    return result


def _dedup(deps: List[Dependence]) -> List[Dependence]:
    seen = set()
    out = []
    for d in deps:
        key = (d.array, d.src_stmt, d.dst_stmt, d.kind, d.level, d.dmin, d.dmax)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out


def dependence_distance_table(
    nest: LoopNest, params: Mapping[str, int]
) -> Dict[int, List[Dependence]]:
    """Dependences grouped by carried level (``-1`` = loop-independent)."""
    table: Dict[int, List[Dependence]] = {}
    for d in analyze_nest(nest, params):
        table.setdefault(d.level, []).append(d)
    return table
