"""Program analyses: dependence testing and unimodular parallelization.

These are the preprocessing steps of the paper's Section 3: restructure
each nest to expose the largest outermost band of parallel loops, and
compute the dependence information that both the parallelizer and the
decomposition phase consume.
"""

from repro.analysis.dependence import (
    Dependence,
    analyze_nest,
    dependence_distance_table,
)
from repro.analysis.parallelism import (
    parallel_levels,
    outermost_parallel_level,
)
from repro.analysis.unimodular import expose_outer_parallelism

__all__ = [
    "Dependence",
    "analyze_nest",
    "dependence_distance_table",
    "parallel_levels",
    "outermost_parallel_level",
    "expose_outer_parallelism",
]
