"""Fourier–Motzkin elimination over the rationals.

The exact dependence test reduces to questions about small systems of
linear equalities (subscript equations) and inequalities (loop bounds,
ordering constraints):

* is the system feasible?
* what are the extreme values of an affine objective over it?

Both are answered exactly here by Gaussian substitution of the
equalities followed by Fourier–Motzkin elimination of the inequalities.
Systems are tiny (at most ~10 variables for a pair of 4-deep nests), so
the doubly-exponential worst case is irrelevant.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

Coeffs = Dict[str, Fraction]


class Infeasible(Exception):
    """Raised internally when constraint normalization finds 0 <= -c < 0."""


class LinearSystem:
    """A conjunction of affine equalities and <=-inequalities.

    Constraints are stored as (coeffs, const) meaning
    ``sum(coeffs[v] * v) + const <= 0`` (or ``== 0`` for equalities).
    """

    def __init__(self) -> None:
        self.inequalities: List[Tuple[Coeffs, Fraction]] = []
        self.equalities: List[Tuple[Coeffs, Fraction]] = []

    # -- construction -------------------------------------------------------

    @staticmethod
    def _norm(coeffs: Dict[str, object], const) -> Tuple[Coeffs, Fraction]:
        c = {v: Fraction(x) for v, x in coeffs.items() if Fraction(x) != 0}
        return c, Fraction(const)

    def add_le(self, coeffs: Dict[str, object], const) -> None:
        """Add ``sum coeffs*v + const <= 0``."""
        self.inequalities.append(self._norm(coeffs, const))

    def add_ge(self, coeffs: Dict[str, object], const) -> None:
        """Add ``sum coeffs*v + const >= 0``."""
        c, k = self._norm(coeffs, const)
        self.inequalities.append(({v: -x for v, x in c.items()}, -k))

    def add_eq(self, coeffs: Dict[str, object], const) -> None:
        """Add ``sum coeffs*v + const == 0``."""
        self.equalities.append(self._norm(coeffs, const))

    def copy(self) -> "LinearSystem":
        out = LinearSystem()
        out.inequalities = [(dict(c), k) for c, k in self.inequalities]
        out.equalities = [(dict(c), k) for c, k in self.equalities]
        return out

    def variables(self) -> List[str]:
        vs = set()
        for c, _ in self.inequalities + self.equalities:
            vs.update(c)
        return sorted(vs)

    # -- solving ---------------------------------------------------------------

    def _substituted_inequalities(self) -> Optional[List[Tuple[Coeffs, Fraction]]]:
        """Gauss-eliminate the equalities into the inequalities.

        Returns the reduced inequality list, or None when the equalities
        alone are inconsistent (over Q).
        """
        eqs = [(dict(c), k) for c, k in self.equalities]
        ineqs = [(dict(c), k) for c, k in self.inequalities]
        # Triangularize equalities, substituting into everything else.
        for idx in range(len(eqs)):
            c, k = eqs[idx]
            # Never pick the objective marker as a pivot: substituting it
            # away would erase the variable whose bounds we are computing.
            candidates = sorted(v for v in c if v != "__objective__")
            pivot = candidates[0] if candidates else None
            if pivot is None:
                if not c:
                    if k != 0:
                        return None
                    continue
                # Equality over the objective alone: keep it as a pair of
                # inequalities so the bounds survive elimination.
                ineqs.append((dict(c), k))
                ineqs.append(({v: -x for v, x in c.items()}, -k))
                continue
            pc = c[pivot]
            # pivot = -(k + sum others)/pc ; substitute everywhere.
            def subst(target: Tuple[Coeffs, Fraction]) -> Tuple[Coeffs, Fraction]:
                tc, tk = target
                if pivot not in tc:
                    return target
                factor = tc[pivot] / pc
                nc = dict(tc)
                del nc[pivot]
                for v, x in c.items():
                    if v == pivot:
                        continue
                    nc[v] = nc.get(v, Fraction(0)) - factor * x
                    if nc[v] == 0:
                        del nc[v]
                return nc, tk - factor * k
            for j in range(idx + 1, len(eqs)):
                eqs[j] = subst(eqs[j])
            ineqs = [subst(t) for t in ineqs]
        return ineqs

    @staticmethod
    def _eliminate(
        ineqs: List[Tuple[Coeffs, Fraction]], var: str
    ) -> Optional[List[Tuple[Coeffs, Fraction]]]:
        """One Fourier–Motzkin step; None if an immediate contradiction
        (constant constraint c <= 0 with c > 0) appears."""
        lower = []  # coeff < 0: gives var >= bound
        upper = []  # coeff > 0: gives var <= bound
        rest = []
        for c, k in ineqs:
            a = c.get(var, Fraction(0))
            if a > 0:
                upper.append((c, k, a))
            elif a < 0:
                lower.append((c, k, a))
            else:
                rest.append((c, k))
        out = list(rest)
        for cu, ku, au in upper:
            for cl, kl, al in lower:
                # combine: au*(lower) - al*(upper) eliminates var
                nc: Coeffs = {}
                for v in set(cu) | set(cl):
                    if v == var:
                        continue
                    x = cu.get(v, Fraction(0)) / au - cl.get(v, Fraction(0)) / al
                    if x != 0:
                        nc[v] = x
                nk = ku / au - kl / al
                if not nc:
                    if nk > 0:
                        return None
                    continue
                out.append((nc, nk))
        # Constant contradictions in `rest`.
        for c, k in rest:
            if not c and k > 0:
                return None
        return out

    def feasible(self) -> bool:
        """Rational feasibility of the full system."""
        ineqs = self._substituted_inequalities()
        if ineqs is None:
            return False
        for c, k in ineqs:
            if not c and k > 0:
                return False
        vs = sorted({v for c, _ in ineqs for v in c})
        for v in vs:
            result = self._eliminate(ineqs, v)
            if result is None:
                return False
            ineqs = result
        return all(k <= 0 for c, k in ineqs if not c)

    def objective_bounds(
        self, coeffs: Dict[str, object], const=0
    ) -> Optional[Tuple[Optional[Fraction], Optional[Fraction]]]:
        """Exact (min, max) of an affine objective over the solution set.

        Returns None when the system is infeasible; otherwise a pair
        whose entries are Fractions or None for unbounded directions.
        """
        sys2 = self.copy()
        obj = "__objective__"
        c = {v: -Fraction(x) for v, x in coeffs.items()}
        c[obj] = Fraction(1)
        sys2.add_eq(c, -Fraction(const))
        ineqs = sys2._substituted_inequalities()
        if ineqs is None:
            return None
        vs = sorted({v for cc, _ in ineqs for v in cc if v != obj})
        for v in vs:
            result = self._eliminate(ineqs, v)
            if result is None:
                return None
            ineqs = result
        lo: Optional[Fraction] = None
        hi: Optional[Fraction] = None
        for cc, k in ineqs:
            a = cc.get(obj, Fraction(0))
            if a == 0:
                if not cc and k > 0:
                    return None
                continue
            bound = -k / a
            if a > 0:  # obj <= bound
                hi = bound if hi is None else min(hi, bound)
            else:  # obj >= bound
                lo = bound if lo is None else max(lo, bound)
        if lo is not None and hi is not None and lo > hi:
            return None
        return lo, hi
