"""Inspecting the generated SPMD code and address optimizations.

Like the SUIF system, the pipeline's human-readable output is C.  This
example prints the generated SPMD source for the Figure-1 program under
each configuration, then reproduces the Section 4.3 address-optimization
analysis on the transformed addresses.

Run:  python examples/inspect_generated_code.py
"""

from repro.apps import simple
from repro.codegen.addrexpr import build_address_expr, count_divmod
from repro.codegen.optimize import optimize_ref_address
from repro.compiler import Scheme, compile_program, emit_c_program
from repro.ir.expr import Var

N = 16
P = 4


def main():
    prog = simple.build(n=N, time_steps=1)

    for scheme in (Scheme.BASE, Scheme.COMP_DECOMP_DATA):
        spmd = compile_program(prog, scheme, P)
        print("=" * 70)
        print(emit_c_program(spmd))
        print()

    # Address optimization on the restructured array: inside one
    # processor's strip the div is constant and the mod is linear.
    spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, P)
    ta = spmd.transformed["A"]
    addr = build_address_expr(ta.layout, (Var("I"), Var("J")))
    print("address expression for A(I, J):", addr.to_c())
    d, m = count_divmod(addr)
    print(f"naive cost: {d} div + {m} mod per access")
    b = -(-N // P)
    rep = optimize_ref_address(addr, "I", (0, b - 1), {"J": (0, N - 1)})
    print(f"optimized (processor 0's strip I in [0, {b - 1}]):")
    for plan in rep.plans:
        print(f"  {plan.node.to_c()}: {plan.strategy} ({plan.detail})")
    print(f"per-iteration div/mod after optimization: "
          f"{rep.optimized_per_iter}")

    # And the fully rewritten code for one processor — the paper's
    # "idiv = myid; imod = imod + 1" form.
    from repro.codegen.emit_optimized import emit_optimized_program

    print()
    print("=" * 70)
    print("optimized SPMD code as executed by processor 1:")
    print(emit_optimized_program(spmd, proc=1))


if __name__ == "__main__":
    main()
