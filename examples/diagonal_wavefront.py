"""Diagonal layouts — the Section 4.1.2 extension.

The paper notes its framework generalizes beyond permutations:
"rotating a two-dimensional array by 45 degrees makes data along a
diagonal contiguous", with two embeddings — the enclosing box (simple
addressing) or packed diagonals (compact).  A wavefront computation,
which visits one anti-diagonal per step, is the use case.

Run:  python examples/diagonal_wavefront.py
"""

import numpy as np

from repro.datatrans.diagonal import diagonal_layout
from repro.datatrans.layout import Layout
from repro.machine.cache import CacheConfig, direct_mapped_hits

N = 64


def wavefront_trace(linearize, element_size=4):
    """Addresses touched by a wavefront sweep (one diagonal per step)."""
    addrs = []
    for d in range(2 * N - 1):
        for i in range(max(0, d - N + 1), min(d, N - 1) + 1):
            addrs.append(linearize((i, d - i)) * element_size)
    return np.array(addrs)


def main():
    colmajor = Layout.identity((N, N))
    boxed = diagonal_layout((N, N), packed=False)
    packed = diagonal_layout((N, N), packed=True)

    # A cache smaller than one diagonal's column-major span: the
    # rotated layouts stream at 1 miss per line (4 REAL*4 per 16B line),
    # while column-major misses on almost every access.
    cfg = CacheConfig(size_bytes=512, line_bytes=16)
    print(f"wavefront sweep over a {N}x{N} REAL*4 array "
          f"({cfg.size_bytes}B direct-mapped cache):\n")
    print(f"{'layout':22s} {'storage':>8s} {'misses':>8s} {'miss rate':>10s}")
    for label, lay in [("column-major", colmajor),
                       ("diagonal (boxed)", boxed),
                       ("diagonal (packed)", packed)]:
        trace = wavefront_trace(lay.linearize)
        proc = np.zeros(len(trace), dtype=np.int64)
        hits = direct_mapped_hits(proc, trace, cfg)
        misses = int((~hits).sum())
        size = lay.size
        print(f"{label:22s} {size:8d} {misses:8d} "
              f"{misses / len(trace):10.1%}")

    print(
        "\nAlong each diagonal the rotated layouts are stride-1 "
        "(spatial locality), while column-major strides by N-1 elements "
        "and misses on nearly every access.  The packed embedding needs "
        "no padding; the boxed one trades storage for simpler "
        "addressing — the two options the paper sketches."
    )


if __name__ == "__main__":
    main()
