"""Five-point stencil: two-dimensional blocks and why the layout change
is what makes them profitable (the paper's Section 6.2.3).

The decomposition phase picks (BLOCK, BLOCK) for its better
communication-to-computation ratio — but with FORTRAN column-major
layouts each processor's 2-D block is scattered across the address
space, and the program gets SLOWER than the naive base parallelization.
The data transformation packs each block contiguously and wins.

Run:  python examples/stencil_blocks.py
"""

from repro.apps import stencil5
from repro.compiler import Scheme, compile_program, restructure_program
from repro.decomp.greedy import decompose_program
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

N = 96
P = 32


def main():
    prog = stencil5.build(n=N, time_steps=4)
    decomp = decompose_program(restructure_program(prog), P)
    print("stencil decomposition:")
    print(decomp.summary())
    print()

    factory = lambda p: scaled_dash(p, scale=32, word_bytes=4,
                                    page_bytes=512)
    seq = simulate(compile_program(prog, Scheme.BASE, 1), factory(1))
    print(f"{'scheme':34s} {'speedup@32':>10s}  miss breakdown")
    for scheme in (Scheme.BASE, Scheme.COMP_DECOMP,
                   Scheme.COMP_DECOMP_DATA):
        res = simulate(compile_program(prog, scheme, P), factory(P))
        speedup = seq.total_time / res.total_time
        mb = res.miss_breakdown
        detail = (f"remote={mb['remote']} false_share={mb['false_sharing']} "
                  f"replace={mb['replacement']}")
        print(f"{scheme.value:34s} {speedup:10.2f}  {detail}")

    print(
        "\nThe scattered 2-D blocks of COMP DECOMP pay remote misses "
        "(first-touch pages span several processors' row segments) and "
        "false sharing at block boundaries; the restructured layout "
        "makes both vanish."
    )


if __name__ == "__main__":
    main()
