"""Quickstart: the paper's Figure 1 example, end to end.

Builds the two-nest relaxation program, runs the full compiler pipeline
(BASE / COMP DECOMP / COMP DECOMP + DATA TRANSFORM), and simulates all
three on a scaled DASH machine.

Run:  python examples/quickstart.py
"""

from repro.apps import simple
from repro.compiler import Scheme, compile_all
from repro.machine import scaled_dash
from repro.machine.simulate import speedup_curve
from repro.report import format_speedup_table

N = 64


def main():
    prog = simple.build(n=N, time_steps=4)
    print(f"program: {prog}\n")

    # 1. Compile: the decomposition phase finds the paper's result —
    #    iterations of the J loop stay on one processor, so the arrays
    #    are distributed (BLOCK, *) by rows.
    compiled = compile_all(prog, nprocs=8)
    print("decomposition found:")
    print(compiled.decomposition.summary())
    print()

    # 2. The data transformation restructures A so each processor's
    #    block of rows is contiguous (Figure 1(c)).
    ta = compiled.comp_decomp_data.transformed["A"]
    print(f"A restructured: {ta.restructured}; new dims {ta.layout.dims}")
    print(f"A layout atoms: {list(ta.layout.atoms)}\n")

    # 3. Simulate on the scaled DASH machine and print Figure-1-style
    #    speedups.
    factory = lambda p: scaled_dash(p, scale=16, word_bytes=4)
    curves = speedup_curve(
        prog,
        [Scheme.BASE, Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA],
        factory,
        [1, 2, 4, 8, 16, 32],
    )
    print(format_speedup_table(curves, title=f"Figure-1 example, N={N}"))


if __name__ == "__main__":
    main()
