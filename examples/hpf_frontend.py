"""Driving the data transformation from HPF directives.

The paper (Sections 3.1, 4.2 and 7): HPF DISTRIBUTE/ALIGN statements
can be used as *input* to the data-transformation algorithm — instead
of generating message passing, the compiler reorganizes layouts so each
processor's data is contiguous and lets the cache hardware do the rest.

Run:  python examples/hpf_frontend.py
"""

from repro.datatrans.transform import derive_layout
from repro.decomp.hpf import apply_alignment, distribute_string, parse_distribute
from repro.ir.arrays import ArrayDecl

P = 4


def show(decl, dist_text):
    dd, folds = parse_distribute(dist_text, decl.name, decl.rank)
    ta = derive_layout(decl, dd, folds, grid=[P])
    print(f"{decl!r} DISTRIBUTE {dist_text}:")
    print(f"  restructured: {ta.restructured}; new dims {ta.layout.dims}")
    # Show the first processor's address range.
    addrs = []
    import itertools

    for idx in itertools.product(*(range(d) for d in decl.dims)):
        if ta.owner_coords(idx) == (0,):
            addrs.append(ta.layout.linearize(idx))
    if addrs:
        s = sorted(addrs)
        contiguous = s[-1] - s[0] == len(s) - 1
        print(f"  processor 0 owns addresses {s[0]}..{s[-1]} "
              f"({'contiguous' if contiguous else 'scattered'})")
    print()
    return dd, folds


def main():
    a = ArrayDecl("A", (16, 16), 8)
    show(a, "(BLOCK, *)")
    show(a, "(CYCLIC, *)")
    show(a, "(CYCLIC(2), *)")
    show(a, "(*, BLOCK)")  # highest-dim BLOCK: the no-op optimization

    # ALIGN: distribute a template, align an array with transposed axes;
    # the distribution maps through the alignment function.
    t, folds = parse_distribute("(BLOCK, *)", "T", 2)
    b = apply_alignment(t, [[0, 1], [1, 0]], "B")  # ALIGN B(i,j) WITH T(j,i)
    print("template T DISTRIBUTE (BLOCK, *), ALIGN B(i,j) WITH T(j,i):")
    print(f"  B inherits {distribute_string(b, folds)}")


if __name__ == "__main__":
    main()
