"""LU decomposition: cyclic columns, the 31-vs-32 processor cliff, and
how the data transformation removes it (the paper's Section 6.2.2).

Run:  python examples/lu_cyclic_layout.py
"""

from repro.apps import lu
from repro.compiler import Scheme, compile_program, restructure_program
from repro.decomp.greedy import decompose_program
from repro.decomp.hpf import distribute_string
from repro.machine import scaled_dash
from repro.machine.simulate import simulate

N = 64


def main():
    prog = lu.build(n=N)
    decomp = decompose_program(restructure_program(prog), 32)
    dd = decomp.data_for("A")
    print("LU decomposition analysis:")
    print(f"  A distributed {distribute_string(dd, decomp.foldings)} "
          f"(paper Table 1: A(*, CYCLIC))")
    print(f"  pipelined nests: {decomp.pipelined_nests}")
    print(f"  notes: {decomp.notes}\n")

    # The cyclic layout: processor p owns columns p, p+P, p+2P, ...
    # Restructured, those columns become contiguous.
    spmd = compile_program(prog, Scheme.COMP_DECOMP_DATA, 4)
    ta = spmd.transformed["A"]
    print(f"restructured A dims: {ta.layout.dims}")
    for col in (0, 4, 8):
        addr = ta.layout.linearize((0, col))
        print(f"  A(0, {col}) -> address {addr} "
              f"(owner {ta.owner_coords((0, col))})")
    print()

    # The conflict cliff: with a direct-mapped cache whose aliasing
    # period divides P, a processor's cyclic columns all collide.
    factory = lambda p: scaled_dash(p, scale=16, word_bytes=8)
    print(f"{'scheme':32s} {'P=31':>12s} {'P=32':>12s}")
    for scheme in (Scheme.COMP_DECOMP, Scheme.COMP_DECOMP_DATA):
        times = []
        for p in (31, 32):
            res = simulate(compile_program(prog, scheme, p), factory(p))
            times.append(res.total_time)
        print(f"{scheme.value:32s} {times[0]:12.3e} {times[1]:12.3e}"
              f"   (32/31 ratio {times[1] / times[0]:.2f})")
    print("\ncomp-decomp suffers at P=32; the data transformation "
          "stabilizes it (paper: '31 processors is 5 times better than "
          "32' before, 'consistently high' after).")


if __name__ == "__main__":
    main()
